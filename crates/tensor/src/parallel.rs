//! Shared worker pool for data-parallel tensor kernels.
//!
//! The GEMM and convolution kernels in this crate split their work into
//! independent tasks (output-row blocks for GEMM, batch samples for
//! convolution) and run them on one process-wide pool of worker threads.
//! The pool is created lazily on first use and reused for every
//! subsequent kernel call — no per-call thread spawning.
//!
//! ## Determinism
//!
//! Parallelism here never changes results. Work is partitioned so that
//! every output element is produced by exactly one task with the same
//! floating-point accumulation order as the sequential kernel, so results
//! are **bitwise identical** for any thread count (see the property tests
//! in `tests/properties.rs`).
//!
//! ## Configuration
//!
//! The thread count is resolved in this order:
//!
//! 1. [`set_num_threads`] — programmatic override, wins over everything;
//! 2. the `INSITU_THREADS` environment variable, read once on first use;
//! 3. [`std::thread::available_parallelism`].
//!
//! A count of 1 disables the pool entirely: every kernel takes its plain
//! sequential path, exactly reproducing single-threaded behavior.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

use insitu_telemetry as telemetry;

/// Upper bound on pool threads; a safety valve against absurd
/// `INSITU_THREADS` values, far above any realistic core count here.
pub const MAX_THREADS: usize = 64;

/// Kernels stay sequential below this much work (~multiply-accumulates);
/// waking the pool costs more than a tiny op. This is a performance
/// heuristic only — results are identical either way.
pub(crate) const PAR_MIN_FLOPS: u64 = 1 << 18;

/// Resolved thread count; 0 means "not resolved yet".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while a thread is executing pool tasks (and permanently on
    /// workers): nested parallel calls run inline instead of re-entering
    /// the pool, which would deadlock the waiting outer call.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Sets the number of threads used by parallel kernels (clamped to
/// `1..=`[`MAX_THREADS`]). Takes effect for every subsequent kernel call
/// in the process; `set_num_threads(1)` restores pure sequential
/// execution. Results do not depend on this value — only speed does.
pub fn set_num_threads(n: usize) {
    CONFIGURED.store(n.clamp(1, MAX_THREADS), Ordering::Release);
}

/// The number of threads parallel kernels currently use.
///
/// On first call (unless [`set_num_threads`] ran earlier) this resolves
/// the default from the `INSITU_THREADS` environment variable, falling
/// back to [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    let n = CONFIGURED.load(Ordering::Acquire);
    if n != 0 {
        return n;
    }
    let resolved = default_threads();
    // Racing first calls resolve the same value; either store wins.
    let _ = CONFIGURED.compare_exchange(0, resolved, Ordering::AcqRel, Ordering::Acquire);
    CONFIGURED.load(Ordering::Acquire)
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("INSITU_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get()).min(MAX_THREADS)
}

/// `dyn` task closure with the borrow lifetime erased. Sound because
/// [`run_pooled`] blocks until every claimed task has finished running
/// (see the SAFETY notes there and in [`Job::work`]).
struct JobFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are fine from any thread)
// and is only dereferenced while the submitting call keeps it alive.
unsafe impl Send for JobFn {}
unsafe impl Sync for JobFn {}

/// One batch of tasks submitted to the pool.
struct Job {
    func: JobFn,
    /// Total task count; tasks are claimed via `next`.
    tasks: usize,
    next: AtomicUsize,
    /// Workers that have picked this job up; capped at `helper_limit` so
    /// lowering the thread count mid-process takes effect immediately.
    joiners: AtomicUsize,
    helper_limit: usize,
    /// Tasks not yet finished; the submitter waits for this to hit zero.
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Job {
    /// Claims and runs tasks until the task counter is exhausted.
    fn work(&self) {
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            if t >= self.tasks {
                break;
            }
            // SAFETY: `run_pooled` returns only after `remaining` hits
            // zero, and `remaining` hits zero only after every claimed
            // task (including this one) finishes — so the closure behind
            // `func` outlives this call. A worker arriving after the
            // final decrement claims `t >= tasks` and never gets here.
            let f = unsafe { &*self.func.0 };
            if catch_unwind(AssertUnwindSafe(|| f(t))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            let mut rem = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
            *rem -= 1;
            if *rem == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every task has finished.
    fn wait(&self) {
        let mut rem = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *rem > 0 {
            rem = self.done.wait(rem).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct PoolState {
    /// Bumped on every submission so sleeping workers can tell a new job
    /// from a spurious wakeup.
    generation: u64,
    job: Option<Arc<Job>>,
    /// Worker threads spawned so far (grown lazily, never shrunk).
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    bell: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { generation: 0, job: None, spawned: 0 }),
        bell: Condvar::new(),
    })
}

fn worker_loop() {
    let pool = pool();
    // Workers never re-enter the pool from inside a task.
    IN_PARALLEL.with(|c| c.set(true));
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.generation != last_gen {
                    last_gen = st.generation;
                    if let Some(j) = st.job.clone() {
                        break j;
                    }
                }
                st = pool.bell.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        if job.joiners.fetch_add(1, Ordering::AcqRel) < job.helper_limit {
            let _t = telemetry::span("pool.work");
            job.work();
        }
    }
}

/// Runs `f(0), f(1), …, f(tasks - 1)`, distributing the calls over the
/// worker pool. Every index runs exactly once; the call returns after all
/// of them finish. Tasks must be independent — the caller is responsible
/// for making their side effects disjoint.
///
/// Runs inline (plain sequential loop, ascending order) when the thread
/// count is 1, when there is at most one task, or when called from inside
/// another parallel task.
///
/// # Panics
///
/// If a task panics, the remaining tasks still run, and the panic is
/// re-raised here once all of them finish.
pub fn parallel_for<F>(tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = num_threads();
    if tasks <= 1 || threads <= 1 || IN_PARALLEL.with(|c| c.get()) {
        for t in 0..tasks {
            f(t);
        }
        return;
    }
    run_pooled(tasks, threads, &f);
}

fn run_pooled(tasks: usize, threads: usize, f: &(dyn Fn(usize) + Sync)) {
    let _t = telemetry::span_with("pool.job", || format!("{tasks} tasks x{threads}"));
    telemetry::counter_add("pool.jobs", "", 1);
    telemetry::counter_add("pool.tasks", "", tasks as u64);
    // Erase the borrow lifetime so workers can hold the closure pointer.
    // SAFETY (of the lifetime, not a memory access): this function does
    // not return until `Job::wait` observes all tasks finished, so the
    // raw pointer never outlives the borrow it was made from — dangling
    // copies held by late workers are never dereferenced (see
    // `Job::work`).
    #[allow(clippy::transmute_ptr_to_ptr)] // cast can't erase the lifetime
    let func = JobFn(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
    });
    let helper_limit = (threads - 1).min(tasks - 1).min(MAX_THREADS);
    let job = Arc::new(Job {
        func,
        tasks,
        next: AtomicUsize::new(0),
        joiners: AtomicUsize::new(0),
        helper_limit,
        remaining: Mutex::new(tasks),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    let pool = pool();
    {
        let mut st = pool.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.spawned < helper_limit {
            let idx = st.spawned;
            thread::Builder::new()
                .name(format!("insitu-worker-{idx}"))
                .spawn(worker_loop)
                .expect("failed to spawn insitu worker thread");
            st.spawned += 1;
        }
        st.generation = st.generation.wrapping_add(1);
        st.job = Some(Arc::clone(&job));
        pool.bell.notify_all();
    }
    // The submitting thread works too, so `threads` threads participate.
    IN_PARALLEL.with(|c| c.set(true));
    job.work();
    IN_PARALLEL.with(|c| c.set(false));
    // Time spent blocked on stragglers: the pool's queue/idle cost as
    // seen by the submitter.
    let wait_start = telemetry::enabled().then(std::time::Instant::now);
    job.wait();
    if let Some(t0) = wait_start {
        telemetry::counter_add("pool.wait_ns", "", t0.elapsed().as_nanos() as u64);
    }
    // Retire the job so late-waking workers don't hold the (now dead)
    // closure pointer longer than needed.
    {
        let mut st = pool.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cur) = &st.job {
            if Arc::ptr_eq(cur, &job) {
                st.job = None;
            }
        }
    }
    if job.panicked.load(Ordering::Acquire) {
        panic!("a parallel tensor kernel task panicked");
    }
}

/// Raw pointer that may cross threads; used to hand disjoint sub-slices
/// of one buffer to parallel tasks.
pub(crate) struct SendPtr<T>(pub *mut T);

// Manual impls: the derives would add a spurious `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer. (A method rather than field access so that
    /// closures capture the `Sync` wrapper, not the raw pointer.)
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: tasks built on `SendPtr` only touch disjoint regions (each
// call site documents its partition), so sharing the base pointer across
// threads is sound.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Physical cores the host actually has, resolved once. Distinct from
/// [`num_threads`], which callers may set to anything: the *requested*
/// count sizes the pool, but kernels never split work wider than the
/// hardware (see [`plan_parts`]) — on a 1-core host, extra threads only
/// add dispatch and contention cost without any parallel speedup.
pub(crate) fn host_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Number of parallel parts to split `units` work items into, given the
/// total floating-point work. Returns 1 (sequential) for small jobs or
/// an effective thread count of 1; otherwise
/// `min(threads, host_cores, units)` — the requested thread count is
/// capped at [`host_cores`], because splitting beyond the physical
/// cores is a pure loss (the parts time-slice one core and pay the
/// pool's dispatch overhead on top).
pub(crate) fn plan_parts(units: usize, flops: u64) -> usize {
    let t = num_threads().min(host_cores());
    if t <= 1 || units <= 1 || flops < PAR_MIN_FLOPS {
        1
    } else {
        t.min(units)
    }
}

/// The `part`-th of `parts` balanced contiguous sub-ranges of `0..n`.
pub(crate) fn split_range(n: usize, parts: usize, part: usize) -> Range<usize> {
    debug_assert!(part < parts);
    let base = n / parts;
    let extra = n % parts;
    let start = part * base + part.min(extra);
    let len = base + usize::from(part < extra);
    start..start + len
}

/// Runs `f(i, chunk_i)` over the consecutive `chunk_len`-sized chunks of
/// `data` in parallel (the last chunk may be shorter). Chunks are
/// disjoint, so no synchronization is needed inside `f`.
///
/// This is the building block training uses to parallelize batch
/// assembly; it falls back to a plain call when there is at most one
/// chunk or the pool is disabled.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be nonzero");
    let len = data.len();
    let tasks = len.div_ceil(chunk_len);
    if tasks <= 1 {
        if len > 0 {
            f(0, data);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(tasks, move |i| {
        let start = i * chunk_len;
        let clen = chunk_len.min(len - start);
        // SAFETY: chunk `i` covers `start..start + clen`, disjoint from
        // every other chunk index.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), clen) };
        f(i, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that change the global thread count. (The count
    /// never affects results, but these tests assert on specific
    /// configurations.)
    static THREADS_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads(n: usize, f: impl FnOnce()) {
        let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = num_threads();
        set_num_threads(n);
        let result = catch_unwind(AssertUnwindSafe(f));
        set_num_threads(prev);
        if let Err(e) = result {
            std::panic::resume_unwind(e);
        }
    }

    #[test]
    fn set_num_threads_round_trips_and_clamps() {
        with_threads(3, || assert_eq!(num_threads(), 3));
        with_threads(0, || assert_eq!(num_threads(), 1));
        with_threads(MAX_THREADS + 10, || assert_eq!(num_threads(), MAX_THREADS));
    }

    #[test]
    fn parallel_for_runs_every_index_once() {
        for threads in [1, 2, 4] {
            with_threads(threads, || {
                let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
                parallel_for(hits.len(), |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
                }
            });
        }
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        with_threads(4, || {
            let total = AtomicUsize::new(0);
            parallel_for(4, |_| {
                // Inner call must not deadlock waiting for pool workers
                // that are all busy with the outer job.
                parallel_for(8, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(total.load(Ordering::Relaxed), 32);
        });
    }

    #[test]
    fn pool_is_reused_across_calls() {
        with_threads(2, || {
            for _ in 0..50 {
                let total = AtomicUsize::new(0);
                parallel_for(8, |i| {
                    total.fetch_add(i, Ordering::Relaxed);
                });
                assert_eq!(total.load(Ordering::Relaxed), 28);
            }
        });
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        with_threads(2, || {
            let ran = AtomicUsize::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                parallel_for(8, |i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 3 {
                        panic!("boom");
                    }
                });
            }));
            assert!(result.is_err());
            assert_eq!(ran.load(Ordering::Relaxed), 8);
        });
    }

    #[test]
    fn split_range_partitions_exactly() {
        for n in [0usize, 1, 5, 64, 65, 1000] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut next = 0;
                for p in 0..parts {
                    let r = split_range(n, parts, p);
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn par_chunks_mut_matches_serial_chunks() {
        with_threads(4, || {
            let mut data = vec![0u32; 103];
            par_chunks_mut(&mut data, 10, |i, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 1000 + j) as u32;
                }
            });
            let mut expect = vec![0u32; 103];
            for (i, chunk) in expect.chunks_mut(10).enumerate() {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 1000 + j) as u32;
                }
            }
            assert_eq!(data, expect);
        });
    }

    #[test]
    fn plan_parts_thresholds() {
        with_threads(4, || {
            let effective = 4.min(host_cores());
            assert_eq!(plan_parts(8, PAR_MIN_FLOPS - 1), 1, "small jobs stay sequential");
            assert_eq!(plan_parts(8, PAR_MIN_FLOPS), effective, "capped by host cores");
            assert_eq!(plan_parts(2, u64::MAX), effective.min(2), "capped by unit count");
            assert_eq!(plan_parts(1, u64::MAX), 1);
        });
        with_threads(1, || {
            assert_eq!(plan_parts(1000, u64::MAX), 1);
        });
    }

    #[test]
    fn plan_parts_never_exceeds_host_cores() {
        // Requesting more threads than the machine has must not widen
        // the split: the extra parts would time-slice one core and pay
        // pool dispatch for nothing (the regression BENCH_kernels.json
        // recorded on a 1-core host).
        with_threads(MAX_THREADS, || {
            assert!(plan_parts(usize::MAX, u64::MAX) <= host_cores());
        });
    }
}
