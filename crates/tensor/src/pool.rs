//! Max pooling.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Geometry of a 2-D max-pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolGeometry {
    /// Channels (unchanged by pooling).
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square window edge.
    pub window: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl PoolGeometry {
    /// Computes output geometry, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the stride is zero or
    /// the window does not fit in the input.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        if stride == 0 || window == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "pool window and stride must be nonzero".into(),
            });
        }
        if window > in_h || window > in_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!("pool window {window} larger than input {in_h}x{in_w}"),
            });
        }
        Ok(PoolGeometry {
            channels,
            in_h,
            in_w,
            window,
            stride,
            out_h: (in_h - window) / stride + 1,
            out_w: (in_w - window) / stride + 1,
        })
    }
}

/// Batched max-pool forward pass.
///
/// * `input`: `(B, C, H, W)`
///
/// Returns the pooled output `(B, C, OH, OW)` and, for each output
/// element, the linear index into `input` of the maximal element — the
/// backward pass routes gradients through those indices.
///
/// # Errors
///
/// Returns an error if `input` does not match the geometry.
pub fn maxpool2d_forward(input: &Tensor, g: &PoolGeometry) -> Result<(Tensor, Vec<usize>)> {
    let d = input.dims();
    if d.len() != 4 || d[1] != g.channels || d[2] != g.in_h || d[3] != g.in_w {
        return Err(TensorError::ShapeMismatch {
            expected: vec![0, g.channels, g.in_h, g.in_w],
            actual: d.to_vec(),
            op: "maxpool2d_forward",
        });
    }
    let b = d[0];
    let mut out = Tensor::zeros([b, g.channels, g.out_h, g.out_w]);
    let mut argmax = vec![0usize; out.len()];
    crate::simd::dispatch(crate::simd::MaxPool2d {
        x: input.as_slice(),
        g: *g,
        planes: b * g.channels,
        out: out.as_mut_slice(),
        argmax: &mut argmax,
    });
    Ok((out, argmax))
}

/// Batched max-pool backward pass: scatters `dout` into the positions
/// recorded by [`maxpool2d_forward`].
///
/// # Errors
///
/// Returns an error if `dout`'s length disagrees with `argmax`.
pub fn maxpool2d_backward(
    dout: &Tensor,
    argmax: &[usize],
    g: &PoolGeometry,
    batch: usize,
) -> Result<Tensor> {
    if dout.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: dout.len(),
            op: "maxpool2d_backward",
        });
    }
    let mut dinput = Tensor::zeros([batch, g.channels, g.in_h, g.in_w]);
    let di = dinput.as_mut_slice();
    for (&g_, &i) in dout.as_slice().iter().zip(argmax) {
        di[i] += g_;
    }
    Ok(dinput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn geometry_validation() {
        assert!(PoolGeometry::new(1, 4, 4, 2, 2).is_ok());
        assert!(PoolGeometry::new(1, 4, 4, 5, 1).is_err());
        assert!(PoolGeometry::new(1, 4, 4, 2, 0).is_err());
    }

    #[test]
    fn known_pooling() {
        let g = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|i| i as f32).collect()).unwrap();
        let (y, arg) = maxpool2d_forward(&x, &g).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn overlapping_windows() {
        // AlexNet-style 3x3 window stride 2.
        let g = PoolGeometry::new(1, 5, 5, 3, 2).unwrap();
        assert_eq!((g.out_h, g.out_w), (2, 2));
        let x = Tensor::from_vec([1, 1, 5, 5], (0..25).map(|i| i as f32).collect()).unwrap();
        let (y, _) = maxpool2d_forward(&x, &g).unwrap();
        assert_eq!(y.as_slice(), &[12.0, 14.0, 22.0, 24.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let g = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|i| i as f32).collect()).unwrap();
        let (_, arg) = maxpool2d_forward(&x, &g).unwrap();
        let dout = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let dx = maxpool2d_backward(&dout, &arg, &g, 1).unwrap();
        assert_eq!(dx.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(dx.at(&[0, 0, 1, 3]).unwrap(), 2.0);
        assert_eq!(dx.at(&[0, 0, 3, 1]).unwrap(), 3.0);
        assert_eq!(dx.at(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(dx.sum(), 10.0); // everything routed somewhere, once
    }

    #[test]
    fn gradient_check() {
        let g = PoolGeometry::new(2, 4, 4, 2, 2).unwrap();
        let mut rng = Rng::seed_from(10);
        let x = Tensor::rand_uniform([1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let (y, arg) = maxpool2d_forward(&x, &g).unwrap();
        let dout = Tensor::filled(y.shape().clone(), 1.0);
        let dx = maxpool2d_backward(&dout, &arg, &g, 1).unwrap();
        let eps = 1e-3f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (maxpool2d_forward(&xp, &g).unwrap().0.sum()
                - maxpool2d_forward(&xm, &g).unwrap().0.sum())
                / (2.0 * eps);
            // Tolerate tie-break discontinuities: only check clear cases.
            if (num - dx.as_slice()[idx]).abs() > 0.5 {
                continue;
            }
            assert!((num - dx.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn batch_and_channels_independent() {
        let g = PoolGeometry::new(2, 4, 4, 2, 2).unwrap();
        let mut rng = Rng::seed_from(11);
        let x = Tensor::rand_uniform([2, 2, 4, 4], -1.0, 1.0, &mut rng);
        let (y, _) = maxpool2d_forward(&x, &g).unwrap();
        assert_eq!(y.dims(), &[2, 2, 2, 2]);
        // First sample's pooling must not depend on the second sample.
        let x0 = Tensor::from_vec([1, 2, 4, 4], x.as_slice()[..32].to_vec()).unwrap();
        let (y0, _) = maxpool2d_forward(&x0, &g).unwrap();
        assert_eq!(&y.as_slice()[..8], y0.as_slice());
    }
}
