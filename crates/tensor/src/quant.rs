//! Symmetric i8 quantization and the fixed-point GEMM path.
//!
//! The paper's FPGA architecture (Section IV) runs fixed-point PEs;
//! this module is the software twin of that datapath. The scheme is
//! the standard symmetric affine-free one:
//!
//! * **Activations** are quantized per tensor with one static scale
//!   obtained from calibration data: `scale = max|x| / 127`,
//!   `q = round(x / scale)` clamped to `[-127, 127]`.
//! * **Weights** are quantized per row (a Linear output feature or a
//!   conv output channel), which costs nothing at inference time —
//!   the per-row scale folds into the dequantization of that output
//!   row — and noticeably tightens the error of rows with small
//!   dynamic range ([`QuantizedMatrix`]).
//! * **Accumulation is i32 and exact.** `|a·b| ≤ 127²`, so any
//!   `k ≤ i32::MAX / 127²` (≈ 133 000, far beyond every shape here)
//!   cannot overflow, and — unlike f32 — *every* summation order
//!   yields the same bits. [`matmul_i8`] is therefore bitwise
//!   identical to the naive [`matmul_i8_naive`] oracle at any shape,
//!   micro-kernel and thread count, which is the same contract the
//!   f32 packed kernels carry, only cheaper to uphold.
//!
//! The packed path reuses everything the f32 GEMM built: the same
//! BLIS panel layout (the packers in [`crate::pack`] are generic over
//! the element type), the same [`Kernel`] runtime dispatch (so
//! `INSITU_GEMM_KERNEL=scalar` pins the portable i8 kernel together
//! with the f32 one), the same row-band parallel split, and the same
//! grow-only [`GemmScratch`] arena — steady state allocates nothing.
//! Kernel activity is traced under `tensor.quant.*` spans with a
//! `tensor.quant.bytes` counter.

use crate::error::TensorError;
use crate::microkernel::Kernel;
use crate::pack::{pack_a_i8, pack_b_i8, packed_a_len, packed_b_len, GemmScratch};
use crate::parallel::{parallel_for, plan_parts, split_range, SendPtr};
use crate::tensor::Tensor;
use crate::Result;
use insitu_telemetry as telemetry;
use std::cell::RefCell;

/// Largest representable quantized magnitude. The symmetric scheme
/// uses `[-127, 127]` (not -128) so that negation is closed and the
/// AVX2 `vpmaddwd` pair sums stay well inside i16-product range.
pub const QUANT_MAX: f32 = 127.0;

/// The quantization scale mapping `[-max_abs, max_abs]` onto the i8
/// range. Guards against degenerate inputs: an all-zero (or
/// non-finite) range maps to a tiny positive scale so quantization
/// stays well-defined and dequantization returns zeros.
pub fn quant_scale(max_abs: f32) -> f32 {
    if max_abs.is_finite() && max_abs > 0.0 {
        max_abs / QUANT_MAX
    } else {
        f32::MIN_POSITIVE
    }
}

/// Largest absolute value in `values` (0.0 for an empty slice);
/// non-finite entries are ignored so one corrupt activation cannot
/// blow up a layer's scale. Dispatched through the SIMD layer — the
/// calibration scan walks every activation of every layer.
pub fn max_abs(values: &[f32]) -> f32 {
    crate::simd::max_abs(values)
}

/// Quantizes `src` into `dst` with round-to-nearest (ties to even, the
/// hardware rounding mode) and saturation at ±127. `scale` must be
/// positive (see [`quant_scale`]). Non-finite inputs quantize to 0
/// (NaN) or ±127 (infinities).
///
/// Runs on every activation tensor of every quantized forward, so it
/// goes through the SIMD dispatch layer
/// ([`simd::QuantizeI8`](crate::simd::QuantizeI8)): rounding uses the
/// `1.5·2²³` magic constant (adding and subtracting it forces the
/// mantissa to integer granularity in the hardware rounding mode) in
/// both bodies, because both `f32::round` and `f32::round_ties_even`
/// lower to a libcall per element without SSE4.1. Clamping *before*
/// the round keeps the value inside the trick's exact range
/// (`|v| ≤ 2²²`), and the AVX2 body is bitwise identical to the
/// scalar loop for every input.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn quantize_i8(src: &[f32], scale: f32, dst: &mut [i8]) {
    let inv = 1.0 / scale;
    crate::simd::dispatch(crate::simd::QuantizeI8 { src, inv_scale: inv, dst });
}

/// Reconstructs f32 values from quantized `src`: `x ≈ q · scale`. The
/// round-trip error of [`quantize_i8`] → `dequantize_i8` is bounded by
/// `scale / 2` per element for inputs within `±127·scale`.
pub fn dequantize_i8(src: &[i8], scale: f32, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &q) in dst.iter_mut().zip(src) {
        *d = f32::from(q) * scale;
    }
}

/// A weight matrix quantized symmetrically **per row**, ready for the
/// i8 GEMM. For a Linear layer the rows are output features (the
/// `(out, in)` weight as stored); for a conv layer the caller flattens
/// the filter bank to `(out_channels, in_channels·K²)` first, making
/// rows the output channels.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `(rows, cols)` f32 matrix, one symmetric
    /// scale per row.
    ///
    /// # Errors
    ///
    /// Returns an error if `src.len() != rows * cols`.
    pub fn from_rows(src: &[f32], rows: usize, cols: usize) -> Result<Self> {
        if src.len() != rows * cols {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "QuantizedMatrix: {} elements cannot form {rows}x{cols}",
                    src.len()
                ),
            });
        }
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            let row = &src[r * cols..][..cols];
            let s = quant_scale(max_abs(row));
            quantize_i8(row, s, &mut data[r * cols..][..cols]);
            scales[r] = s;
        }
        Ok(Self { rows, cols, data, scales })
    }

    /// Number of rows (output features / channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input features per row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantized elements, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-row dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

thread_local! {
    /// Arena behind the scratch-free [`matmul_i8`] entry point,
    /// mirroring the f32 thread-local scratch.
    static TL_QUANT_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::new());
}

/// Reference `O(M·N·K)` i8 triple-loop product with i32 accumulation —
/// the oracle [`matmul_i8`] must match bitwise.
pub fn matmul_i8_naive(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "matmul_i8_naive: A length");
    assert_eq!(b.len(), k * n, "matmul_i8_naive: B length");
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = i32::from(a[i * k + kk]);
            for j in 0..n {
                out[i * n + j] += aik * i32::from(b[kk * n + j]);
            }
        }
    }
    out
}

/// The compute half of the packed i8 GEMM: drives the selected i8
/// micro-kernel over panel-aligned row bands, in parallel when the
/// product is large enough. Bitwise equal to the naive oracle at any
/// split (integer accumulation is exact).
pub(crate) fn gemm_packed_prepacked_i8(
    kern: Kernel,
    pa: &[i8],
    pb: &[i8],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [i32],
) {
    let mr = kern.mr();
    let mp = m.div_ceil(mr);
    let parts = plan_parts(mp, 2 * m as u64 * k as u64 * n as u64);
    if parts <= 1 {
        kern.run_band_i8(pa, pb, k, n, 0..m, out);
        return;
    }
    let base = SendPtr(out.as_mut_ptr());
    parallel_for(parts, move |p| {
        let pr = split_range(mp, parts, p);
        let (r0, r1) = (pr.start * mr, (pr.end * mr).min(m));
        // SAFETY: `split_range` partitions the panel index space, so
        // each task's row band `r0..r1` of `out` is disjoint.
        let band =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(r0 * n), (r1 - r0) * n) };
        kern.run_band_i8(pa, pb, k, n, r0..r1, band);
    });
}

/// Packs both i8 operands into `scratch` and runs the packed kernel.
/// `b_trans` reads `bv` as its transpose (`(n, k)` row-major), which is
/// how Linear weights are stored.
#[allow(clippy::too_many_arguments)] // flat GEMM signature: operands + dims + scratch
pub(crate) fn gemm_packed_i8(
    av: &[i8],
    a_trans: bool,
    bv: &[i8],
    b_trans: bool,
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
    out: &mut [i32],
) {
    gemm_packed_i8_with(Kernel::select(), av, a_trans, bv, b_trans, m, k, n, scratch, out);
}

/// [`gemm_packed_i8`] on an explicit micro-kernel variant — the entry
/// point behind [`matmul_i8_with_kernel`] and the cross-kernel tests.
#[allow(clippy::too_many_arguments)] // flat GEMM signature: operands + dims + scratch
pub(crate) fn gemm_packed_i8_with(
    kern: Kernel,
    av: &[i8],
    a_trans: bool,
    bv: &[i8],
    b_trans: bool,
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
    out: &mut [i32],
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let (mr, nr) = (kern.mr(), kern.nr());
    let (pa, pb) = scratch.panels_i8(packed_a_len(m, k, mr), packed_b_len(k, n, nr));
    {
        let _p = telemetry::span_with("tensor.quant.pack", || format!("{m}x{k}x{n}"));
        pack_a_i8(av, m, k, a_trans, mr, pa);
        pack_b_i8(bv, k, n, b_trans, nr, pb);
    }
    gemm_packed_prepacked_i8(kern, pa, pb, m, k, n, out);
}

/// Packed i8 matrix product `C = A·B` with i32 accumulation, into a
/// caller-owned scratch and output buffer. Bitwise identical to
/// [`matmul_i8_naive`] at any shape, kernel and thread count.
///
/// # Errors
///
/// Returns an error if any slice length disagrees with `(m, k, n)`.
pub fn matmul_i8_ws(
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
    out: &mut [i32],
) -> Result<()> {
    if a.len() != m * k || b.len() != k * n || out.len() != m * n {
        return Err(TensorError::InvalidGeometry {
            reason: format!(
                "matmul_i8: A {} / B {} / C {} incompatible with {m}x{k}x{n}",
                a.len(),
                b.len(),
                out.len()
            ),
        });
    }
    let _t = telemetry::span_with("tensor.quant.gemm_i8", || format!("{m}x{k}x{n}"));
    telemetry::counter_add("tensor.quant.bytes", "gemm_i8", (m * k + k * n + 4 * m * n) as u64);
    // No pre-clear: the band kernels assign every element of `out`
    // (zero-k included), so a memset here would only cost bandwidth.
    gemm_packed_i8(a, false, b, false, m, k, n, scratch, out);
    Ok(())
}

/// Packed i8 matrix product `C = A·B`, allocating the output. Uses a
/// thread-local scratch (steady state packs into warm buffers).
///
/// # Errors
///
/// Returns an error if a slice length disagrees with `(m, k, n)`.
pub fn matmul_i8(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    let mut out = vec![0i32; m * n];
    TL_QUANT_SCRATCH.with(|s| matmul_i8_ws(a, b, m, k, n, &mut s.borrow_mut(), &mut out))?;
    Ok(out)
}

/// [`matmul_i8`] forced onto a specific micro-kernel variant by name
/// (one of [`gemm_kernels_supported`](crate::gemm_kernels_supported)),
/// regardless of the process-wide selection — the i8 twin of
/// [`matmul_with_kernel`](crate::matmul_with_kernel).
///
/// # Errors
///
/// Returns an error if `kernel` is not a host-supported kernel name or
/// a slice length disagrees with `(m, k, n)`.
pub fn matmul_i8_with_kernel(
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    kernel: &str,
) -> Result<Vec<i32>> {
    let kern = Kernel::from_name(kernel).ok_or_else(|| TensorError::InvalidGeometry {
        reason: format!(
            "unknown or host-unsupported GEMM kernel `{kernel}`; this host supports {:?}",
            crate::gemm_kernels_supported()
        ),
    })?;
    if a.len() != m * k || b.len() != k * n {
        return Err(TensorError::InvalidGeometry {
            reason: format!(
                "matmul_i8: A {} / B {} incompatible with {m}x{k}x{n}",
                a.len(),
                b.len()
            ),
        });
    }
    let _t = telemetry::span_with("tensor.quant.gemm_i8", || format!("{m}x{k}x{n}"));
    telemetry::counter_add("tensor.quant.bytes", "gemm_i8", (m * k + k * n + 4 * m * n) as u64);
    let mut out = vec![0i32; m * n];
    TL_QUANT_SCRATCH.with(|s| {
        gemm_packed_i8_with(kern, a, false, b, false, m, k, n, &mut s.borrow_mut(), &mut out)
    });
    Ok(out)
}

/// Quantized Linear forward: `y = dequant(quant(x) · Wqᵀ) + bias`.
///
/// `input` is `(batch, in)` f32, quantized per tensor with the static
/// `in_scale` from calibration; `qweight` is the `(out, in)` weight
/// quantized per row. Row `o` of the i32 accumulator dequantizes with
/// `in_scale · w_scale[o]` before the bias is added — all f32 work is
/// element-wise, so the output is deterministic at any thread count.
///
/// # Errors
///
/// Returns an error if shapes disagree.
pub fn linear_forward_i8_ws(
    input: &Tensor,
    qweight: &QuantizedMatrix,
    bias: &Tensor,
    in_scale: f32,
    scratch: &mut GemmScratch,
) -> Result<Tensor> {
    if input.shape().ndim() != 2 || input.dims()[1] != qweight.cols() {
        return Err(TensorError::InvalidGeometry {
            reason: format!(
                "linear_forward_i8: input {} incompatible with quantized weight {}x{}",
                input.shape(),
                qweight.rows(),
                qweight.cols()
            ),
        });
    }
    let (b, inf, outf) = (input.dims()[0], qweight.cols(), qweight.rows());
    if bias.len() != outf {
        return Err(TensorError::InvalidGeometry {
            reason: format!("linear_forward_i8: bias {} != out features {outf}", bias.len()),
        });
    }
    let _t = telemetry::span_with("tensor.quant.linear_fwd", || format!("{b}x{inf}x{outf}"));
    telemetry::counter_add(
        "tensor.quant.bytes",
        "linear_i8",
        (b * inf + outf * inf + 4 * b * outf) as u64,
    );
    let kern = Kernel::select();
    let (pa, pb, qa, acc) = scratch.quant_buffers(
        packed_a_len(b, inf, kern.mr()),
        packed_b_len(inf, outf, kern.nr()),
        b * inf,
        b * outf,
    );
    quantize_i8(input.as_slice(), in_scale, qa);
    {
        let _p = telemetry::span_with("tensor.quant.pack", || format!("{b}x{inf}x{outf}"));
        pack_a_i8(qa, b, inf, false, kern.mr(), pa);
        pack_b_i8(qweight.data(), inf, outf, true, kern.nr(), pb);
    }
    gemm_packed_prepacked_i8(kern, pa, pb, b, inf, outf, acc);
    let mut out = vec![0.0f32; b * outf];
    let (bv, scales) = (bias.as_slice(), qweight.scales());
    for s in 0..b {
        let row = &acc[s * outf..][..outf];
        let dst = &mut out[s * outf..][..outf];
        for (((d, &a), &sc), &bo) in dst.iter_mut().zip(row).zip(scales).zip(bv) {
            *d = a as f32 * (in_scale * sc) + bo;
        }
    }
    Tensor::from_vec([b, outf], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_i8(rng: &mut Rng, len: usize) -> Vec<i8> {
        (0..len).map(|_| (rng.below(255) as i32 - 127) as i8).collect()
    }

    #[test]
    fn every_supported_kernel_matches_the_oracle_bitwise() {
        let mut rng = Rng::seed_from(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (8, 8, 8), (9, 19, 13), (16, 7, 33)] {
            let a = random_i8(&mut rng, m * k);
            let b = random_i8(&mut rng, k * n);
            let oracle = matmul_i8_naive(&a, &b, m, k, n);
            for kern in Kernel::supported() {
                let mut pa = vec![0i8; packed_a_len(m, k, kern.mr())];
                let mut pb = vec![0i8; packed_b_len(k, n, kern.nr())];
                pack_a_i8(&a, m, k, false, kern.mr(), &mut pa);
                pack_b_i8(&b, k, n, false, kern.nr(), &mut pb);
                let mut out = vec![0i32; m * n];
                kern.run_band_i8(&pa, &pb, k, n, 0..m, &mut out);
                assert_eq!(out, oracle, "{} {m}x{k}x{n}", kern.name());
            }
        }
    }

    #[test]
    fn round_trip_error_is_within_half_a_step() {
        let mut rng = Rng::seed_from(11);
        let x: Vec<f32> = (0..257).map(|_| (rng.below(2001) as f32 - 1000.0) / 300.0).collect();
        let scale = quant_scale(max_abs(&x));
        let mut q = vec![0i8; x.len()];
        let mut back = vec![0.0f32; x.len()];
        quantize_i8(&x, scale, &mut q);
        dequantize_i8(&q, scale, &mut back);
        for (orig, rt) in x.iter().zip(&back) {
            assert!((orig - rt).abs() <= scale * 0.5 + f32::EPSILON, "{orig} vs {rt}");
        }
    }

    #[test]
    fn quantize_saturates_and_degenerate_scales_are_safe() {
        let mut q = [0i8; 3];
        quantize_i8(&[10.0, -10.0, 0.4], 0.01, &mut q);
        assert_eq!(q, [127, -127, 40]);
        assert!(quant_scale(0.0) > 0.0);
        assert!(quant_scale(f32::NAN) > 0.0);
        assert_eq!(max_abs(&[]), 0.0);
        assert_eq!(max_abs(&[1.0, f32::INFINITY, -3.0]), 3.0);
    }

    #[test]
    fn per_row_scales_follow_each_rows_range() {
        let w = [1.0, -0.5, 0.25, 0.1, 100.0, -7.0];
        let qm = QuantizedMatrix::from_rows(&w, 2, 3).unwrap();
        assert_eq!(qm.rows(), 2);
        assert_eq!(qm.cols(), 3);
        assert!((qm.scales()[0] - 1.0 / 127.0).abs() < 1e-7);
        assert!((qm.scales()[1] - 100.0 / 127.0).abs() < 1e-5);
        assert_eq!(qm.data()[0], 127); // 1.0 at scale 1/127
        assert_eq!(qm.data()[4], 127); // 100.0 at scale 100/127
    }

    #[test]
    fn linear_forward_i8_tracks_f32_linear() {
        let mut rng = Rng::seed_from(23);
        let x = Tensor::rand_uniform([5, 16], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([8, 16], -0.5, 0.5, &mut rng);
        let bias = Tensor::rand_uniform([8], -0.1, 0.1, &mut rng);
        let qw = QuantizedMatrix::from_rows(w.as_slice(), 8, 16).unwrap();
        let in_scale = quant_scale(max_abs(x.as_slice()));
        let mut scratch = GemmScratch::new();
        let got = linear_forward_i8_ws(&x, &qw, &bias, in_scale, &mut scratch).unwrap();
        let mut reference = crate::matmul_nt(&x, &w).unwrap();
        for s in 0..5 {
            for o in 0..8 {
                let v = reference.at(&[s, o]).unwrap() + bias.as_slice()[o];
                reference.set(&[s, o], v).unwrap();
            }
        }
        // Worst-case per-element error: k · (quantization noise), far
        // below 2% of the activation range for these magnitudes.
        assert!(got.max_abs_diff(&reference).unwrap() < 0.05);
        assert_eq!(got.dims(), &[5, 8]);
    }
}
