//! The dense `f32` tensor type.

use crate::error::TensorError;
use crate::rng::Rng;
use crate::shape::Shape;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the single numeric container used throughout the
/// reproduction: images, weights, activations and gradients are all
/// tensors. Storage is a contiguous `Vec<f32>`; the rightmost dimension
/// varies fastest.
///
/// # Examples
///
/// ```
/// use insitu_tensor::Tensor;
///
/// # fn main() -> Result<(), insitu_tensor::TensorError> {
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::filled([2, 2], 1.0);
/// let c = a.add(&b)?;
/// assert_eq!(c.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor { shape, data: vec![value; len] }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not
    /// equal the number of elements implied by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.len() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
                op: "from_vec",
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor whose entries are i.i.d. uniform in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor whose entries are i.i.d. normal with the given
    /// mean and standard deviation.
    pub fn randn(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.normal_with(mean, std)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes, shorthand for `self.shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying storage (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: self.data.len(),
                op: "reshape",
            });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_shape(other, "zip_map")?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += alpha * other` (saxpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (`NaN` for empty tensors).
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Maximum element (`None` for empty tensors).
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |m, x| match m {
            None => Some(x),
            Some(m) => Some(m.max(x)),
        })
    }

    /// Index of the maximum element in linear (row-major) order.
    /// Returns `None` for empty tensors. Ties resolve to the first.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &x) in self.data.iter().enumerate() {
            match best {
                Some((_, bx)) if x <= bx => {}
                _ => best = Some((i, x)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Largest absolute difference to another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other, "max_abs_diff")?;
        Ok(crate::simd::max_abs_diff(&self.data, &other.data))
    }

    /// Copies `other`'s contents into `self` (shapes must match).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn copy_from(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "copy_from")?;
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// Extracts row `i` of a 2-D tensor as a new 1-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the tensor is not 2-D,
    /// or [`TensorError::IndexOutOfBounds`] if `i` is out of range.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.shape.ndim() != 2 {
            return Err(TensorError::InvalidGeometry {
                reason: format!("row() requires a 2-D tensor, got {}", self.shape),
            });
        }
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: Shape::from([cols]),
            data: self.data[i * cols..(i + 1) * cols].to_vec(),
        })
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the tensor is not 2-D.
    pub fn transpose2d(&self) -> Result<Tensor> {
        if self.shape.ndim() != 2 {
            return Err(TensorError::InvalidGeometry {
                reason: format!("transpose2d() requires a 2-D tensor, got {}", self.shape),
            });
        }
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0; self.data.len()];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor::from_vec([cols, rows], out)
    }

    /// Concatenates 1-D tensors into one 1-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if any input is not 1-D.
    pub fn concat1d(parts: &[&Tensor]) -> Result<Tensor> {
        let mut data = Vec::new();
        for p in parts {
            if p.shape.ndim() != 1 {
                return Err(TensorError::InvalidGeometry {
                    reason: format!("concat1d() requires 1-D tensors, got {}", p.shape),
                });
            }
            data.extend_from_slice(&p.data);
        }
        let len = data.len();
        Tensor::from_vec([len], data)
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: other.shape.dims().to_vec(),
                op,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|x| format!("{x:.4}")).collect();
        write!(f, "[{}{}]", preview.join(", "), if self.data.len() > 8 { ", …" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Tensor::filled([3], 2.5);
        assert_eq!(f.as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec([2, 2], vec![1.0; 3]),
            Err(TensorError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![4.0, 3.0, 2.0, 1.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0; 4]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 6.0, 6.0, 4.0]);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::filled([3], 1.0);
        let b = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1.0, -2.0, 3.0, 0.0]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), Some(3.0));
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn argmax_ties_first() {
        let t = Tensor::from_vec([3], vec![5.0, 5.0, 1.0]).unwrap();
        assert_eq!(t.argmax(), Some(0));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([7]).is_err());
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros([2, 3, 4]);
        t.set(&[1, 2, 3], 9.0).unwrap();
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 9.0);
        assert_eq!(t.at(&[0, 0, 0]).unwrap(), 0.0);
        assert!(t.at(&[2, 0, 0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[0, 1]).unwrap(), 4.0);
        assert_eq!(tt.transpose2d().unwrap(), t);
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(t.row(1).unwrap().as_slice(), &[4.0, 5.0, 6.0]);
        assert!(t.row(2).is_err());
        assert!(Tensor::zeros([4]).row(0).is_err());
    }

    #[test]
    fn concat1d_works() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec([3], vec![3.0, 4.0, 5.0]).unwrap();
        let c = Tensor::concat1d(&[&a, &b]).unwrap();
        assert_eq!(c.dims(), &[5]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(Tensor::concat1d(&[&Tensor::zeros([2, 2])]).is_err());
    }

    #[test]
    fn random_constructors_in_range() {
        let mut rng = Rng::seed_from(1);
        let u = Tensor::rand_uniform([100], -1.0, 1.0, &mut rng);
        assert!(u.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let n = Tensor::randn([2000], 0.0, 0.1, &mut rng);
        assert!(n.mean().abs() < 0.02);
    }

    #[test]
    fn max_abs_diff_measures_distance() {
        let a = Tensor::from_vec([2], vec![1.0, 5.0]).unwrap();
        let b = Tensor::from_vec([2], vec![1.5, 4.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
    }

    #[test]
    fn display_nonempty() {
        let t = Tensor::zeros([2, 2]);
        assert!(!format!("{t}").is_empty());
        let big = Tensor::zeros([100]);
        assert!(format!("{big}").contains('…'));
    }
}
