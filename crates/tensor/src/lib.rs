//! # insitu-tensor
//!
//! Dense `f32` tensors and the numeric kernels used by the In-situ AI
//! reproduction: packed register-tiled GEMM (BLIS-style operand packing
//! into a reusable [`GemmScratch`] arena feeding an MR×NR micro-kernel),
//! im2col convolution (the exact lowering the paper's Fig. 8 describes
//! for GPU execution), max pooling, and a deterministic PCG32 random
//! number generator so every experiment is reproducible from a single
//! seed.
//!
//! Large GEMMs and batched convolutions run on a shared worker pool (see
//! [`parallel`]); thread count comes from [`set_num_threads`] or the
//! `INSITU_THREADS` environment variable, and results are bitwise
//! identical for any setting.
//!
//! The non-GEMM hot ops (ReLU, maxpool, softmax, quantization,
//! metric reductions) go through the [`simd`] dispatch layer: one
//! [`simd::SimdOp`] trait, a scalar oracle body per op, and
//! runtime-detected vector bodies (AVX2 and AVX-512 on x86-64, NEON
//! on aarch64), all pinnable with
//! `INSITU_SIMD=scalar|avx2|avx512|neon`.
//!
//! A symmetric-i8 fixed-point inference path ([`matmul_i8`],
//! [`conv2d_forward_i8_ws`], [`linear_forward_i8_ws`]) mirrors the
//! paper's fixed-point FPGA PEs: same packed panel layout and kernel
//! dispatch, i32 accumulation, bitwise identical to its naive oracle
//! at any shape, kernel and thread count.
//!
//! ## Example
//!
//! ```
//! use insitu_tensor::{matmul, ConvGeometry, Rng, Tensor};
//!
//! # fn main() -> Result<(), insitu_tensor::TensorError> {
//! let mut rng = Rng::seed_from(42);
//! let x = Tensor::randn([1, 3, 8, 8], 0.0, 1.0, &mut rng);
//! let w = Tensor::randn([4, 3, 3, 3], 0.0, 0.1, &mut rng);
//! let b = Tensor::zeros([4]);
//! let g = ConvGeometry::new(3, 8, 8, 4, 3, 1, 1)?;
//! let (y, _) = insitu_tensor::conv2d_forward(&x, &w, &b, &g)?;
//! assert_eq!(y.dims(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod conv;
mod error;
mod matmul;
mod microkernel;
mod pack;
pub mod parallel;
mod pool;
mod quant;
mod rng;
mod shape;
pub mod simd;
mod tensor;

pub use conv::{
    col2im, conv2d_backward, conv2d_backward_ws, conv2d_forward, conv2d_forward_i8_ws,
    conv2d_forward_ws, im2col, ConvGeometry, ConvWorkspace,
};
pub use error::TensorError;
pub use matmul::{
    gemm_kernel_name, gemm_kernels_supported, matmul, matmul_naive, matmul_nt, matmul_nt_ws,
    matmul_tn, matmul_tn_ws, matmul_with_kernel, matmul_ws, matvec, GemmScratch,
};
pub use parallel::{num_threads, par_chunks_mut, parallel_for, set_num_threads};
pub use pool::{maxpool2d_backward, maxpool2d_forward, PoolGeometry};
pub use quant::{
    dequantize_i8, linear_forward_i8_ws, matmul_i8, matmul_i8_naive, matmul_i8_with_kernel,
    matmul_i8_ws, max_abs, quant_scale, quantize_i8, QuantizedMatrix, QUANT_MAX,
};
pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
