//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the reproduction (weight initialization,
//! dataset synthesis, environment drift, permutation choice) draws from
//! [`Rng`], a small PCG32 generator seeded through SplitMix64. The entire
//! pipeline is therefore reproducible from a single `u64` seed, which the
//! experiment harness relies on when comparing system variants on *the
//! same* simulated data stream.

/// A deterministic PCG32 pseudo-random number generator.
///
/// Not cryptographically secure; intended for simulations and
/// initialization only.
///
/// # Examples
///
/// ```
/// use insitu_tensor::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u32(), b.next_u32()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
    inc: u64,
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f32>,
}

const PCG_MULT: u64 = 6364136223846793005;

/// SplitMix64 step, used to expand a single seed into PCG state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1; // stream selector must be odd
        let mut rng = Rng { state, inc, gauss_spare: None };
        // Advance once so that nearby seeds decorrelate immediately.
        rng.next_u32();
        rng
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own stream.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(((self.next_u32() as u64) << 32) | self.next_u32() as u64)
    }

    /// Next 32 uniformly distributed bits (PCG-XSH-RR).
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 high bits give full f32 mantissa precision.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)` via Lemire rejection; `n` must be > 0.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below called with n = 0");
        let n = n as u64;
        let threshold = n.wrapping_neg() % n; // (2^64 - n) mod n
        loop {
            let x = self.next_u64();
            let m = x as u128 * n as u128;
            let lo = m as u64;
            if lo >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Standard normal sample (Box-Muller with caching).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        loop {
            let u1 = self.next_f32();
            if u1 <= f32::EPSILON {
                continue;
            }
            let u2 = self.next_f32();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.gauss_spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f32) -> bool {
        self.next_f32() < p.clamp(0.0, 1.0)
    }

    /// Fisher-Yates shuffle of a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly chooses an element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir sampling),
    /// returned in ascending order. If `k >= n` all indices are returned.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir.sort_unstable();
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_range_uniformly() {
        let mut rng = Rng::seed_from(11);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "count {c} outside tolerance");
        }
    }

    #[test]
    #[should_panic(expected = "n = 0")]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely to be identity
    }

    #[test]
    fn sample_indices_distinct_and_sorted() {
        let mut rng = Rng::seed_from(13);
        let s = rng.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 100));
        assert_eq!(rng.sample_indices(3, 10), vec![0, 1, 2]);
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng::seed_from(21);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..32).filter(|_| c1.next_u32() == c2.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(17);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::seed_from(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
