//! Register-tiled GEMM micro-kernels.
//!
//! A [`Kernel`] computes MR×NR output tiles of `C = A·B` from *packed*
//! operand panels (see [`crate::pack`]): an A-panel stores MR rows
//! k-major (`ap[k*MR + r]`), a B-panel stores NR columns k-major
//! (`bp[k*NR + c]`). The k loop is one ascending pass with the whole
//! tile of accumulators held in registers, so every output element is
//! the plain left-to-right sum `((0 + a₀·b₀) + a₁·b₁) + …` — exactly
//! the chain [`matmul_naive`](crate::matmul_naive) produces. That makes
//! the packed kernels bitwise-reproducible against the oracle for any
//! tile shape, panel partition or thread count: parallelism and tiling
//! only change *which* element is computed *when*, never the f32 op
//! sequence behind one element.
//!
//! Ragged edges are handled by zero padding: panels are always full
//! MR/NR wide, the micro-kernel always computes a full tile, and only
//! the valid sub-rectangle is stored. Padded lanes multiply zeros and
//! are discarded, so they cannot perturb valid elements.
//!
//! Four kernel variants share the determinism contract:
//!
//! * [`Kernel::Scalar8x4`] — the portable baseline. Plain safe Rust;
//!   on x86-64 the autovectorizer emits SSE2 for it.
//! * [`Kernel::Avx2_8x8`] (x86-64 only) — the *same* generic body
//!   compiled under `#[target_feature(enable = "avx2,fma")]` with a
//!   wider tile, selected at runtime when the host supports it. Wider
//!   vectors change speed only: Rust never contracts `acc + a*b` into
//!   an FMA, so the per-element f32 op sequence — and therefore every
//!   bit of the result — is identical across kernels.
//! * [`Kernel::Avx512_8x16`] (x86-64 only) — hand-written zmm
//!   intrinsics. It cannot reuse the generic body: under the `avx512f`
//!   target feature LLVM still prefers 256-bit vectors
//!   (`prefer-vector-width=256`), so only explicit `_mm512_*` ops
//!   guarantee 16-wide lanes. The body uses separate
//!   `_mm512_mul_ps` + `_mm512_add_ps` — never `_mm512_fmadd_ps` —
//!   keeping the one-rounding-per-op scalar chain.
//! * [`Kernel::Neon8x8`] (aarch64 only) — hand-written NEON
//!   intrinsics, `vmulq_f32` + `vaddq_f32`. `vfmaq_f32` would be
//!   faster but fuses into a single rounding, which breaks bitwise
//!   equality with the scalar oracle; the crate-wide determinism
//!   contract wins.
//!
//! Anything that keeps a single ascending-k accumulation chain per
//! element inherits the determinism guarantee for free.
//!
//! Selection is cached per process and follows the crate-wide
//! [`Isa`](crate::simd::Isa) choice (the `INSITU_SIMD` knob); the
//! legacy `INSITU_GEMM_KERNEL` override (`scalar` / `avx2` / `avx512`
//! / `neon` / `auto`) still takes precedence for the GEMM alone, which
//! is how the property tests pin the portable path. Both knobs
//! hard-error on unrecognized or host-unsupported values.
//!
//! # i8 tiles
//!
//! Each variant also carries an i8 micro-kernel ([`Kernel::run_band_i8`])
//! over the *same* packed panel layout, accumulating in i32. Integer
//! accumulation is exact, so — unlike f32 — **any** summation order is
//! bitwise identical to the naive reference; the AVX2 variant exploits
//! that by pairing adjacent k-steps for `vpmaddwd` (16 i16 products per
//! instruction). The caller must keep `k ≤ i32::MAX / 127² (≈ 133k)`
//! so a worst-case accumulation cannot overflow; every shape in this
//! codebase is orders of magnitude below that.

use crate::simd::{parse_isa_request, Isa};
use std::ops::Range;
use std::sync::OnceLock;

/// Generic MR×NR register tile: one ascending pass over `kc` packed
/// k-steps. Kept `#[inline(always)]` so each instantiation inlines into
/// its (possibly `target_feature`-annotated) wrapper and vectorizes
/// under that wrapper's instruction set.
#[inline(always)]
fn tile_body<const MR: usize, const NR: usize>(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for r in 0..MR {
            let ar = a[r];
            for (accc, &bc) in acc[r].iter_mut().zip(b) {
                *accc += ar * bc;
            }
        }
    }
    acc
}

/// Computes every tile of a panel-aligned row band of `C`.
///
/// `ap`/`bp` are the *full* packed operands, `k`/`n` the logical GEMM
/// dimensions, `rows` the absolute output-row range (its start must be
/// MR-aligned; its end is the band edge, clipped to M on the last
/// band), and `band` the `rows`-slice of the row-major `C` buffer.
/// Every element of `band` is assigned (not accumulated).
#[inline(always)]
fn band_body<const MR: usize, const NR: usize>(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    n: usize,
    rows: Range<usize>,
    band: &mut [f32],
) {
    debug_assert_eq!(rows.start % MR, 0, "bands must start on a panel boundary");
    debug_assert_eq!(band.len(), rows.len() * n);
    let np = n.div_ceil(NR);
    for i0 in rows.clone().step_by(MR) {
        let tile_rows = MR.min(rows.end - i0);
        let apanel = &ap[(i0 / MR) * MR * k..][..MR * k];
        for jp in 0..np {
            let j0 = jp * NR;
            let tile_cols = NR.min(n - j0);
            let bpanel = &bp[jp * NR * k..][..NR * k];
            let acc = tile_body::<MR, NR>(k, apanel, bpanel);
            let out = &mut band[(i0 - rows.start) * n + j0..];
            for (r, acc_row) in acc.iter().enumerate().take(tile_rows) {
                out[r * n..r * n + tile_cols].copy_from_slice(&acc_row[..tile_cols]);
            }
        }
    }
}

/// Generic MR×NR i8 register tile with i32 accumulators: the integer
/// twin of [`tile_body`]. Exact, so any instruction-level reordering
/// the autovectorizer applies is still bitwise-faithful.
#[inline(always)]
fn tile_body_i8<const MR: usize, const NR: usize>(
    kc: usize,
    ap: &[i8],
    bp: &[i8],
) -> [[i32; NR]; MR] {
    let mut acc = [[0i32; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for r in 0..MR {
            let ar = i32::from(a[r]);
            for (accc, &bc) in acc[r].iter_mut().zip(b) {
                *accc += ar * i32::from(bc);
            }
        }
    }
    acc
}

/// i8 twin of [`band_body`]: every tile of a panel-aligned row band of
/// the i32 output. Same argument contract, i8 panels in, i32 band out.
#[inline(always)]
fn band_body_i8<const MR: usize, const NR: usize>(
    ap: &[i8],
    bp: &[i8],
    k: usize,
    n: usize,
    rows: Range<usize>,
    band: &mut [i32],
) {
    debug_assert_eq!(rows.start % MR, 0, "bands must start on a panel boundary");
    debug_assert_eq!(band.len(), rows.len() * n);
    let np = n.div_ceil(NR);
    for i0 in rows.clone().step_by(MR) {
        let tile_rows = MR.min(rows.end - i0);
        let apanel = &ap[(i0 / MR) * MR * k..][..MR * k];
        for jp in 0..np {
            let j0 = jp * NR;
            let tile_cols = NR.min(n - j0);
            let bpanel = &bp[jp * NR * k..][..NR * k];
            let acc = tile_body_i8::<MR, NR>(k, apanel, bpanel);
            let out = &mut band[(i0 - rows.start) * n + j0..];
            for (r, acc_row) in acc.iter().enumerate().take(tile_rows) {
                out[r * n..r * n + tile_cols].copy_from_slice(&acc_row[..tile_cols]);
            }
        }
    }
}

/// Hand-written AVX2 i8 band: 8×8 tiles via `vpmaddwd`, pairing two
/// adjacent k-steps per instruction (each madd lane computes
/// `a_k·b_k[c] + a_{k+1}·b_{k+1}[c]` — 16 widened i16 products per
/// accumulator update). i16 intermediates cannot overflow
/// (|a·b| ≤ 127², pair sum ≤ 2·127² < i16-pair range in i32 lanes) and
/// i32 accumulation is exact, so this is bitwise identical to the
/// scalar tile for any k within the module-doc bound.
///
/// Both operands are pair-interleaved with a byte shuffle
/// (`vpshufb` + sign-extend turns 16 packed bytes of two adjacent
/// k-steps directly into madd-ready dword lanes). The A side is
/// interleaved once per row band into a stack buffer — the hot loop
/// then runs one broadcast-load, one madd and one add per row, with no
/// scalar pair assembly on the critical path. The buffer is a fixed
/// 8 KiB block; larger k accumulates block partials into the output
/// band, which is still exact (integer adds in a fixed order).
///
/// # Safety
///
/// The caller must have verified that the host supports AVX2 (see
/// [`Kernel::select`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn band_avx2_i8_8x8(
    ap: &[i8],
    bp: &[i8],
    k: usize,
    n: usize,
    rows: Range<usize>,
    band: &mut [i32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(rows.start % 8, 0, "bands must start on a panel boundary");
    debug_assert_eq!(band.len(), rows.len() * n);
    if k == 0 {
        // The k-block loop below never runs; the contract (every band
        // element assigned) still must hold.
        band.fill(0);
        return;
    }
    let np = n.div_ceil(8);
    // Byte-shuffle masks: `interleave` turns the 16 bytes of two
    // adjacent packed k-steps into (x_k[i], x_{k+1}[i]) byte pairs;
    // `spread` does the same for a lone final k-step with a zero
    // partner (0x80 index ⇒ pshufb writes 0).
    #[rustfmt::skip]
    let interleave =
        _mm_setr_epi8(0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15);
    #[rustfmt::skip]
    let spread = _mm_setr_epi8(
        0, -128, 1, -128, 2, -128, 3, -128, 4, -128, 5, -128, 6, -128, 7, -128,
    );
    // A-pair staging: dword p·8+r holds rows' (a_k, a_{k+1}) i16 pair
    // for pair index p within the current k block.
    const KBLK_PAIRS: usize = 256;
    let mut apairs = [0i32; 8 * KBLK_PAIRS];
    for i0 in rows.clone().step_by(8) {
        let tile_rows = 8.min(rows.end - i0);
        let apanel = &ap[(i0 / 8) * 8 * k..][..8 * k];
        let mut k0 = 0usize;
        while k0 < k {
            let kc = (2 * KBLK_PAIRS).min(k - k0);
            let kend = k0 + kc;
            // Interleave this block's A pairs once; every column tile
            // of the band reuses them.
            let mut p = 0usize;
            let mut kk = k0;
            while kk + 1 < kend {
                // SAFETY: apanel holds 8·k bytes and kk+2 ≤ k, so the
                // 16-byte load covering both k-steps is in bounds.
                let raw = _mm_loadu_si128(apanel.as_ptr().add(kk * 8).cast());
                let wide = _mm256_cvtepi8_epi16(_mm_shuffle_epi8(raw, interleave));
                _mm256_storeu_si256(apairs.as_mut_ptr().add(p * 8).cast(), wide);
                kk += 2;
                p += 1;
            }
            if kk < kend {
                let raw = _mm_loadl_epi64(apanel.as_ptr().add(kk * 8).cast());
                let wide = _mm256_cvtepi8_epi16(_mm_shuffle_epi8(raw, spread));
                _mm256_storeu_si256(apairs.as_mut_ptr().add(p * 8).cast(), wide);
            }
            for jp in 0..np {
                let j0 = jp * 8;
                let tile_cols = 8.min(n - j0);
                let bpanel = &bp[jp * 8 * k..][..8 * k];
                let mut acc = [_mm256_setzero_si256(); 8];
                let mut p = 0usize;
                let mut kk = k0;
                while kk + 1 < kend {
                    // SAFETY: bpanel holds 8·k bytes and kk+2 ≤ k.
                    let raw = _mm_loadu_si128(bpanel.as_ptr().add(kk * 8).cast());
                    let bpair = _mm256_cvtepi8_epi16(_mm_shuffle_epi8(raw, interleave));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let apair = _mm256_set1_epi32(*apairs.get_unchecked(p * 8 + r));
                        *accr = _mm256_add_epi32(*accr, _mm256_madd_epi16(apair, bpair));
                    }
                    kk += 2;
                    p += 1;
                }
                if kk < kend {
                    let raw = _mm_loadl_epi64(bpanel.as_ptr().add(kk * 8).cast());
                    let bpair = _mm256_cvtepi8_epi16(_mm_shuffle_epi8(raw, spread));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let apair = _mm256_set1_epi32(*apairs.get_unchecked(p * 8 + r));
                        *accr = _mm256_add_epi32(*accr, _mm256_madd_epi16(apair, bpair));
                    }
                }
                let out = &mut band[(i0 - rows.start) * n + j0..];
                if k0 == 0 && tile_cols == 8 {
                    // Full-width first-block tile: store straight into
                    // the output rows, no staging.
                    for (r, accr) in acc.iter().enumerate().take(tile_rows) {
                        // SAFETY: row r spans out[r·n .. r·n+8], in
                        // bounds because tile_cols == 8 columns remain.
                        _mm256_storeu_si256(out.as_mut_ptr().add(r * n).cast(), *accr);
                    }
                } else {
                    for (r, accr) in acc.iter().enumerate().take(tile_rows) {
                        let mut lane = [0i32; 8];
                        _mm256_storeu_si256(lane.as_mut_ptr().cast(), *accr);
                        let dst = &mut out[r * n..r * n + tile_cols];
                        if k0 == 0 {
                            dst.copy_from_slice(&lane[..tile_cols]);
                        } else {
                            for (d, &v) in dst.iter_mut().zip(&lane[..tile_cols]) {
                                *d += v;
                            }
                        }
                    }
                }
            }
            k0 = kend;
        }
    }
}

/// The same band computation compiled with AVX2 + FMA enabled, so the
/// autovectorizer can use 256-bit lanes for the 8-wide accumulator
/// rows. FMA is enabled for register-allocation freedom only — Rust
/// performs no float contraction, so results stay bitwise identical to
/// the scalar body (see the module docs).
///
/// # Safety
///
/// The caller must have verified that the host supports AVX2 and FMA
/// (see [`Kernel::select`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn band_avx2_8x8(ap: &[f32], bp: &[f32], k: usize, n: usize, rows: Range<usize>, band: &mut [f32]) {
    band_body::<8, 8>(ap, bp, k, n, rows, band);
}

/// Hand-written AVX-512 f32 band: 8×16 tiles in zmm registers. The
/// accumulator update is explicit `_mm512_mul_ps` + `_mm512_add_ps` —
/// **not** `_mm512_fmadd_ps` — so each element remains the plain
/// one-rounding-per-op ascending-k chain the scalar oracle produces
/// (an FMA's single rounding would diverge). Hand-written because
/// LLVM keeps `prefer-vector-width=256` even under the `avx512f`
/// feature, so the generic body would autovectorize to ymm at best.
///
/// # Safety
///
/// The caller must have verified that the host supports AVX-512F (see
/// [`Kernel::select`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn band_avx512_8x16(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    n: usize,
    rows: Range<usize>,
    band: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(rows.start % 8, 0, "bands must start on a panel boundary");
    debug_assert_eq!(band.len(), rows.len() * n);
    let np = n.div_ceil(16);
    for i0 in rows.clone().step_by(8) {
        let tile_rows = 8.min(rows.end - i0);
        let apanel = &ap[(i0 / 8) * 8 * k..][..8 * k];
        for jp in 0..np {
            let j0 = jp * 16;
            let tile_cols = 16.min(n - j0);
            let bpanel = &bp[jp * 16 * k..][..16 * k];
            let mut acc = [_mm512_setzero_ps(); 8];
            for kk in 0..k {
                // SAFETY: bpanel holds 16·k floats, so the 16-wide load
                // at k-step kk is in bounds.
                let b = _mm512_loadu_ps(bpanel.as_ptr().add(kk * 16));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let a = _mm512_set1_ps(*apanel.get_unchecked(kk * 8 + r));
                    *accr = _mm512_add_ps(*accr, _mm512_mul_ps(a, b));
                }
            }
            let out = &mut band[(i0 - rows.start) * n + j0..];
            if tile_cols == 16 {
                for (r, accr) in acc.iter().enumerate().take(tile_rows) {
                    // SAFETY: row r spans out[r·n .. r·n+16], in bounds
                    // because tile_cols == 16 columns remain.
                    _mm512_storeu_ps(out.as_mut_ptr().add(r * n), *accr);
                }
            } else {
                for (r, accr) in acc.iter().enumerate().take(tile_rows) {
                    let mut lane = [0f32; 16];
                    _mm512_storeu_ps(lane.as_mut_ptr(), *accr);
                    out[r * n..r * n + tile_cols].copy_from_slice(&lane[..tile_cols]);
                }
            }
        }
    }
}

/// Hand-written AVX-512 i8 band: 8×16 tiles via the 512-bit
/// `vpmaddwd` (`_mm512_madd_epi16`), pairing two adjacent k-steps per
/// instruction exactly like [`band_avx2_i8_8x8`] but over 16 columns
/// at once. The host this targets carries AVX-512 F+BW but not VNNI,
/// so `vpmaddwd` on sign-extended i16 pairs is the widest exact
/// multiply-accumulate available; i32 accumulation is exact, so the
/// result is bitwise identical to the scalar tile for any k within
/// the module-doc bound.
///
/// The A side reuses the AVX2 kernel's pair-interleaved staging
/// (A panels are still 8 rows); the B side interleaves two adjacent
/// 16-byte k-steps with `unpacklo/hi` and sign-extends the 32 bytes to
/// 16 madd-ready dword lanes in one `_mm512_cvtepi8_epi16`.
///
/// # Safety
///
/// The caller must have verified that the host supports AVX2,
/// AVX-512F and AVX-512BW (see [`Kernel::select`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,avx512f,avx512bw")]
unsafe fn band_avx512_i8_8x16(
    ap: &[i8],
    bp: &[i8],
    k: usize,
    n: usize,
    rows: Range<usize>,
    band: &mut [i32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(rows.start % 8, 0, "bands must start on a panel boundary");
    debug_assert_eq!(band.len(), rows.len() * n);
    if k == 0 {
        band.fill(0);
        return;
    }
    let np = n.div_ceil(16);
    #[rustfmt::skip]
    let interleave =
        _mm_setr_epi8(0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15);
    #[rustfmt::skip]
    let spread = _mm_setr_epi8(
        0, -128, 1, -128, 2, -128, 3, -128, 4, -128, 5, -128, 6, -128, 7, -128,
    );
    // A-pair staging, shared layout with the AVX2 kernel: dword p·8+r
    // holds row r's (a_k, a_{k+1}) i16 pair for pair index p.
    const KBLK_PAIRS: usize = 256;
    let mut apairs = [0i32; 8 * KBLK_PAIRS];
    for i0 in rows.clone().step_by(8) {
        let tile_rows = 8.min(rows.end - i0);
        let apanel = &ap[(i0 / 8) * 8 * k..][..8 * k];
        let mut k0 = 0usize;
        while k0 < k {
            let kc = (2 * KBLK_PAIRS).min(k - k0);
            let kend = k0 + kc;
            let mut p = 0usize;
            let mut kk = k0;
            while kk + 1 < kend {
                // SAFETY: apanel holds 8·k bytes and kk+2 ≤ k, so the
                // 16-byte load covering both k-steps is in bounds.
                let raw = _mm_loadu_si128(apanel.as_ptr().add(kk * 8).cast());
                let wide = _mm256_cvtepi8_epi16(_mm_shuffle_epi8(raw, interleave));
                _mm256_storeu_si256(apairs.as_mut_ptr().add(p * 8).cast(), wide);
                kk += 2;
                p += 1;
            }
            if kk < kend {
                let raw = _mm_loadl_epi64(apanel.as_ptr().add(kk * 8).cast());
                let wide = _mm256_cvtepi8_epi16(_mm_shuffle_epi8(raw, spread));
                _mm256_storeu_si256(apairs.as_mut_ptr().add(p * 8).cast(), wide);
            }
            for jp in 0..np {
                let j0 = jp * 16;
                let tile_cols = 16.min(n - j0);
                let bpanel = &bp[jp * 16 * k..][..16 * k];
                let mut acc = [_mm512_setzero_si512(); 8];
                let mut p = 0usize;
                let mut kk = k0;
                while kk + 1 < kend {
                    // SAFETY: bpanel holds 16·k bytes and kk+2 ≤ k, so
                    // both 16-byte k-step loads are in bounds.
                    let raw0 = _mm_loadu_si128(bpanel.as_ptr().add(kk * 16).cast());
                    let raw1 = _mm_loadu_si128(bpanel.as_ptr().add((kk + 1) * 16).cast());
                    let lo = _mm_unpacklo_epi8(raw0, raw1);
                    let hi = _mm_unpackhi_epi8(raw0, raw1);
                    let bpair = _mm512_cvtepi8_epi16(_mm256_set_m128i(hi, lo));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let apair = _mm512_set1_epi32(*apairs.get_unchecked(p * 8 + r));
                        *accr = _mm512_add_epi32(*accr, _mm512_madd_epi16(apair, bpair));
                    }
                    kk += 2;
                    p += 1;
                }
                if kk < kend {
                    // Lone final k-step: zero partner, exact.
                    let raw0 = _mm_loadu_si128(bpanel.as_ptr().add(kk * 16).cast());
                    let zero = _mm_setzero_si128();
                    let lo = _mm_unpacklo_epi8(raw0, zero);
                    let hi = _mm_unpackhi_epi8(raw0, zero);
                    let bpair = _mm512_cvtepi8_epi16(_mm256_set_m128i(hi, lo));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let apair = _mm512_set1_epi32(*apairs.get_unchecked(p * 8 + r));
                        *accr = _mm512_add_epi32(*accr, _mm512_madd_epi16(apair, bpair));
                    }
                }
                let out = &mut band[(i0 - rows.start) * n + j0..];
                if k0 == 0 && tile_cols == 16 {
                    for (r, accr) in acc.iter().enumerate().take(tile_rows) {
                        // SAFETY: row r spans out[r·n .. r·n+16], in
                        // bounds because tile_cols == 16 columns remain.
                        _mm512_storeu_epi32(out.as_mut_ptr().add(r * n), *accr);
                    }
                } else {
                    for (r, accr) in acc.iter().enumerate().take(tile_rows) {
                        let mut lane = [0i32; 16];
                        _mm512_storeu_epi32(lane.as_mut_ptr(), *accr);
                        let dst = &mut out[r * n..r * n + tile_cols];
                        if k0 == 0 {
                            dst.copy_from_slice(&lane[..tile_cols]);
                        } else {
                            for (d, &v) in dst.iter_mut().zip(&lane[..tile_cols]) {
                                *d += v;
                            }
                        }
                    }
                }
            }
            k0 = kend;
        }
    }
}

/// Hand-written NEON f32 band: 8×8 tiles as 16 `float32x4`
/// accumulators. The update is `vaddq_f32(acc, vmulq_f32(a, b))` —
/// **not** `vfmaq_f32` — because NEON's fused multiply-add rounds
/// once, which would break bitwise equality with the scalar oracle's
/// mul-then-add chain (see the module docs).
///
/// # Safety
///
/// The caller must have verified that the host supports NEON (see
/// [`Kernel::select`]).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn band_neon_8x8(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    n: usize,
    rows: Range<usize>,
    band: &mut [f32],
) {
    use std::arch::aarch64::*;
    debug_assert_eq!(rows.start % 8, 0, "bands must start on a panel boundary");
    debug_assert_eq!(band.len(), rows.len() * n);
    let np = n.div_ceil(8);
    for i0 in rows.clone().step_by(8) {
        let tile_rows = 8.min(rows.end - i0);
        let apanel = &ap[(i0 / 8) * 8 * k..][..8 * k];
        for jp in 0..np {
            let j0 = jp * 8;
            let tile_cols = 8.min(n - j0);
            let bpanel = &bp[jp * 8 * k..][..8 * k];
            // acc[2r] holds row r columns 0..4, acc[2r+1] columns 4..8.
            let mut acc = [vdupq_n_f32(0.0); 16];
            for kk in 0..k {
                // SAFETY: bpanel holds 8·k floats, so both 4-wide loads
                // at k-step kk are in bounds.
                let b0 = vld1q_f32(bpanel.as_ptr().add(kk * 8));
                let b1 = vld1q_f32(bpanel.as_ptr().add(kk * 8 + 4));
                for r in 0..8 {
                    let a = vdupq_n_f32(*apanel.get_unchecked(kk * 8 + r));
                    acc[2 * r] = vaddq_f32(acc[2 * r], vmulq_f32(a, b0));
                    acc[2 * r + 1] = vaddq_f32(acc[2 * r + 1], vmulq_f32(a, b1));
                }
            }
            let out = &mut band[(i0 - rows.start) * n + j0..];
            if tile_cols == 8 {
                for r in 0..tile_rows {
                    // SAFETY: row r spans out[r·n .. r·n+8], in bounds
                    // because tile_cols == 8 columns remain.
                    vst1q_f32(out.as_mut_ptr().add(r * n), acc[2 * r]);
                    vst1q_f32(out.as_mut_ptr().add(r * n + 4), acc[2 * r + 1]);
                }
            } else {
                for r in 0..tile_rows {
                    let mut lane = [0f32; 8];
                    vst1q_f32(lane.as_mut_ptr(), acc[2 * r]);
                    vst1q_f32(lane.as_mut_ptr().add(4), acc[2 * r + 1]);
                    out[r * n..r * n + tile_cols].copy_from_slice(&lane[..tile_cols]);
                }
            }
        }
    }
}

/// Hand-written NEON i8 band: 8×8 tiles via the widening
/// multiply-accumulate `vmlal_s16` over sign-extended i16 lanes, 16
/// `int32x4` accumulators. Integer accumulation is exact, so the
/// result is bitwise identical to the scalar tile regardless of lane
/// order.
///
/// # Safety
///
/// The caller must have verified that the host supports NEON (see
/// [`Kernel::select`]).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn band_neon_i8_8x8(
    ap: &[i8],
    bp: &[i8],
    k: usize,
    n: usize,
    rows: Range<usize>,
    band: &mut [i32],
) {
    use std::arch::aarch64::*;
    debug_assert_eq!(rows.start % 8, 0, "bands must start on a panel boundary");
    debug_assert_eq!(band.len(), rows.len() * n);
    let np = n.div_ceil(8);
    for i0 in rows.clone().step_by(8) {
        let tile_rows = 8.min(rows.end - i0);
        let apanel = &ap[(i0 / 8) * 8 * k..][..8 * k];
        for jp in 0..np {
            let j0 = jp * 8;
            let tile_cols = 8.min(n - j0);
            let bpanel = &bp[jp * 8 * k..][..8 * k];
            // acc[2r] holds row r columns 0..4, acc[2r+1] columns 4..8.
            let mut acc = [vdupq_n_s32(0); 16];
            for kk in 0..k {
                // SAFETY: bpanel holds 8·k bytes, so the 8-byte load at
                // k-step kk is in bounds.
                let b16 = vmovl_s8(vld1_s8(bpanel.as_ptr().add(kk * 8)));
                let blo = vget_low_s16(b16);
                let bhi = vget_high_s16(b16);
                for r in 0..8 {
                    let a = vdup_n_s16(i16::from(*apanel.get_unchecked(kk * 8 + r)));
                    acc[2 * r] = vmlal_s16(acc[2 * r], blo, a);
                    acc[2 * r + 1] = vmlal_s16(acc[2 * r + 1], bhi, a);
                }
            }
            let out = &mut band[(i0 - rows.start) * n + j0..];
            if tile_cols == 8 {
                for r in 0..tile_rows {
                    // SAFETY: row r spans out[r·n .. r·n+8], in bounds
                    // because tile_cols == 8 columns remain.
                    vst1q_s32(out.as_mut_ptr().add(r * n), acc[2 * r]);
                    vst1q_s32(out.as_mut_ptr().add(r * n + 4), acc[2 * r + 1]);
                }
            } else {
                for r in 0..tile_rows {
                    let mut lane = [0i32; 8];
                    vst1q_s32(lane.as_mut_ptr(), acc[2 * r]);
                    vst1q_s32(lane.as_mut_ptr().add(4), acc[2 * r + 1]);
                    out[r * n..r * n + tile_cols].copy_from_slice(&lane[..tile_cols]);
                }
            }
        }
    }
}

/// A register-tiled GEMM micro-kernel variant. See the module docs for
/// the determinism contract shared by all variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    /// Portable 8×4 scalar tile (SSE2 via autovectorization on x86-64).
    Scalar8x4,
    /// 8×8 tile compiled under AVX2+FMA; runtime-detected on x86-64.
    #[cfg(target_arch = "x86_64")]
    Avx2_8x8,
    /// Hand-written 8×16 zmm tile; runtime-detected AVX-512 on x86-64.
    #[cfg(target_arch = "x86_64")]
    Avx512_8x16,
    /// Hand-written 8×8 NEON tile; runtime-detected on aarch64.
    #[cfg(target_arch = "aarch64")]
    Neon8x8,
}

impl Kernel {
    /// Tile height: the A-panel row count the packers must produce.
    pub(crate) fn mr(self) -> usize {
        match self {
            Kernel::Scalar8x4 => 8,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2_8x8 | Kernel::Avx512_8x16 => 8,
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon8x8 => 8,
        }
    }

    /// Tile width: the B-panel column count the packers must produce.
    pub(crate) fn nr(self) -> usize {
        match self {
            Kernel::Scalar8x4 => 4,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2_8x8 => 8,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512_8x16 => 16,
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon8x8 => 8,
        }
    }

    /// Stable name, for benchmarks and traces.
    pub(crate) fn name(self) -> &'static str {
        match self {
            Kernel::Scalar8x4 => "scalar_8x4",
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2_8x8 => "avx2_8x8",
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512_8x16 => "avx512_8x16",
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon8x8 => "neon_8x8",
        }
    }

    /// Runs the micro-kernel over one panel-aligned row band (see
    /// [`band_body`] for the argument contract).
    pub(crate) fn run_band(
        self,
        ap: &[f32],
        bp: &[f32],
        k: usize,
        n: usize,
        rows: Range<usize>,
        band: &mut [f32],
    ) {
        match self {
            Kernel::Scalar8x4 => band_body::<8, 4>(ap, bp, k, n, rows, band),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `select` only yields this variant after runtime
            // detection of AVX2 and FMA (or an explicit override, which
            // also re-checks support).
            Kernel::Avx2_8x8 => unsafe { band_avx2_8x8(ap, bp, k, n, rows, band) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `select` only yields this variant after runtime
            // detection of the AVX-512 subset (F+BW+DQ+VL).
            Kernel::Avx512_8x16 => unsafe { band_avx512_8x16(ap, bp, k, n, rows, band) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `select` only yields this variant after runtime
            // detection of NEON.
            Kernel::Neon8x8 => unsafe { band_neon_8x8(ap, bp, k, n, rows, band) },
        }
    }

    /// Runs the i8 micro-kernel over one panel-aligned row band: same
    /// contract as [`run_band`](Kernel::run_band), i8 packed panels in,
    /// i32 band out. Dispatching through the same selected variant is
    /// what makes `INSITU_GEMM_KERNEL=scalar` pin the portable i8 path
    /// together with the f32 one.
    pub(crate) fn run_band_i8(
        self,
        ap: &[i8],
        bp: &[i8],
        k: usize,
        n: usize,
        rows: Range<usize>,
        band: &mut [i32],
    ) {
        match self {
            Kernel::Scalar8x4 => band_body_i8::<8, 4>(ap, bp, k, n, rows, band),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `select` only yields this variant after runtime
            // detection of AVX2 (and FMA, a superset of what the i8
            // band needs).
            Kernel::Avx2_8x8 => unsafe { band_avx2_i8_8x8(ap, bp, k, n, rows, band) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `select` only yields this variant after runtime
            // detection of AVX-512 F+BW (plus AVX2 for the staging).
            Kernel::Avx512_8x16 => unsafe { band_avx512_i8_8x16(ap, bp, k, n, rows, band) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `select` only yields this variant after runtime
            // detection of NEON.
            Kernel::Neon8x8 => unsafe { band_neon_i8_8x8(ap, bp, k, n, rows, band) },
        }
    }

    /// The kernel every GEMM in this process uses, resolved once and
    /// cached. ISA choice comes from the crate-wide SIMD dispatcher
    /// ([`Isa::select`], governed by `INSITU_SIMD`); the legacy
    /// `INSITU_GEMM_KERNEL` variable (`scalar` / `avx2` / `avx512` /
    /// `neon` / `auto`) still overrides it for the GEMM alone.
    /// Unrecognized or host-unsupported values are a startup error
    /// listing the valid set, never a silent fallback.
    pub(crate) fn select() -> Kernel {
        static SELECTED: OnceLock<Kernel> = OnceLock::new();
        *SELECTED.get_or_init(|| {
            let want = std::env::var("INSITU_GEMM_KERNEL").unwrap_or_default();
            let want = want.trim();
            if want.is_empty() {
                // No GEMM-specific override: follow the crate-wide knob.
                return Kernel::from_isa(Isa::select());
            }
            Kernel::from_isa(parse_isa_request("INSITU_GEMM_KERNEL", want))
        })
    }

    /// The tile geometry matching an ISA chosen by the dispatcher.
    pub(crate) fn from_isa(isa: Isa) -> Kernel {
        match isa {
            Isa::Scalar => Kernel::Scalar8x4,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => Kernel::Avx2_8x8,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => Kernel::Avx512_8x16,
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => Kernel::Neon8x8,
        }
    }

    /// Every variant the current host can run — the portable kernel is
    /// always included. The property tests and the benchmark iterate
    /// this to assert/measure every runnable kernel.
    pub(crate) fn supported() -> Vec<Kernel> {
        Isa::supported().into_iter().map(Kernel::from_isa).collect()
    }

    /// Looks a kernel up by its stable [`name`](Kernel::name) among the
    /// host-supported set.
    pub(crate) fn from_name(name: &str) -> Option<Kernel> {
        Kernel::supported().into_iter().find(|kern| kern.name() == name)
    }
}
