//! Register-tiled GEMM micro-kernels.
//!
//! A [`Kernel`] computes MR×NR output tiles of `C = A·B` from *packed*
//! operand panels (see [`crate::pack`]): an A-panel stores MR rows
//! k-major (`ap[k*MR + r]`), a B-panel stores NR columns k-major
//! (`bp[k*NR + c]`). The k loop is one ascending pass with the whole
//! tile of accumulators held in registers, so every output element is
//! the plain left-to-right sum `((0 + a₀·b₀) + a₁·b₁) + …` — exactly
//! the chain [`matmul_naive`](crate::matmul_naive) produces. That makes
//! the packed kernels bitwise-reproducible against the oracle for any
//! tile shape, panel partition or thread count: parallelism and tiling
//! only change *which* element is computed *when*, never the f32 op
//! sequence behind one element.
//!
//! Ragged edges are handled by zero padding: panels are always full
//! MR/NR wide, the micro-kernel always computes a full tile, and only
//! the valid sub-rectangle is stored. Padded lanes multiply zeros and
//! are discarded, so they cannot perturb valid elements.
//!
//! Two instantiations of one generic tile body exist:
//!
//! * [`Kernel::Scalar8x4`] — the portable baseline. Plain safe Rust;
//!   on x86-64 the autovectorizer emits SSE2 for it.
//! * [`Kernel::Avx2_8x8`] (x86-64 only) — the *same* body compiled
//!   under `#[target_feature(enable = "avx2,fma")]` with a wider tile,
//!   selected at runtime when the host supports it. Wider vectors
//!   change speed only: Rust never contracts `acc + a*b` into an FMA,
//!   so the per-element f32 op sequence — and therefore every bit of
//!   the result — is identical across kernels.
//!
//! Future hand-written SIMD kernels slot in as further `Kernel`
//! variants behind `#[cfg(target_arch = ...)]` gates; anything that
//! keeps a single ascending-k accumulation chain per element inherits
//! the determinism guarantee for free.
//!
//! Selection is cached per process; `INSITU_GEMM_KERNEL=scalar` (or
//! `avx2`) overrides auto-detection, which is how the property tests
//! pin the portable path.

use std::ops::Range;
use std::sync::OnceLock;

/// Generic MR×NR register tile: one ascending pass over `kc` packed
/// k-steps. Kept `#[inline(always)]` so each instantiation inlines into
/// its (possibly `target_feature`-annotated) wrapper and vectorizes
/// under that wrapper's instruction set.
#[inline(always)]
fn tile_body<const MR: usize, const NR: usize>(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for r in 0..MR {
            let ar = a[r];
            for (accc, &bc) in acc[r].iter_mut().zip(b) {
                *accc += ar * bc;
            }
        }
    }
    acc
}

/// Computes every tile of a panel-aligned row band of `C`.
///
/// `ap`/`bp` are the *full* packed operands, `k`/`n` the logical GEMM
/// dimensions, `rows` the absolute output-row range (its start must be
/// MR-aligned; its end is the band edge, clipped to M on the last
/// band), and `band` the `rows`-slice of the row-major `C` buffer.
/// Every element of `band` is assigned (not accumulated).
#[inline(always)]
fn band_body<const MR: usize, const NR: usize>(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    n: usize,
    rows: Range<usize>,
    band: &mut [f32],
) {
    debug_assert_eq!(rows.start % MR, 0, "bands must start on a panel boundary");
    debug_assert_eq!(band.len(), rows.len() * n);
    let np = n.div_ceil(NR);
    for i0 in rows.clone().step_by(MR) {
        let tile_rows = MR.min(rows.end - i0);
        let apanel = &ap[(i0 / MR) * MR * k..][..MR * k];
        for jp in 0..np {
            let j0 = jp * NR;
            let tile_cols = NR.min(n - j0);
            let bpanel = &bp[jp * NR * k..][..NR * k];
            let acc = tile_body::<MR, NR>(k, apanel, bpanel);
            let out = &mut band[(i0 - rows.start) * n + j0..];
            for (r, acc_row) in acc.iter().enumerate().take(tile_rows) {
                out[r * n..r * n + tile_cols].copy_from_slice(&acc_row[..tile_cols]);
            }
        }
    }
}

/// The same band computation compiled with AVX2 + FMA enabled, so the
/// autovectorizer can use 256-bit lanes for the 8-wide accumulator
/// rows. FMA is enabled for register-allocation freedom only — Rust
/// performs no float contraction, so results stay bitwise identical to
/// the scalar body (see the module docs).
///
/// # Safety
///
/// The caller must have verified that the host supports AVX2 and FMA
/// (see [`Kernel::select`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn band_avx2_8x8(ap: &[f32], bp: &[f32], k: usize, n: usize, rows: Range<usize>, band: &mut [f32]) {
    band_body::<8, 8>(ap, bp, k, n, rows, band);
}

/// A register-tiled GEMM micro-kernel variant. See the module docs for
/// the determinism contract shared by all variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    /// Portable 8×4 scalar tile (SSE2 via autovectorization on x86-64).
    Scalar8x4,
    /// 8×8 tile compiled under AVX2+FMA; runtime-detected on x86-64.
    #[cfg(target_arch = "x86_64")]
    Avx2_8x8,
}

impl Kernel {
    /// Tile height: the A-panel row count the packers must produce.
    pub(crate) fn mr(self) -> usize {
        match self {
            Kernel::Scalar8x4 => 8,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2_8x8 => 8,
        }
    }

    /// Tile width: the B-panel column count the packers must produce.
    pub(crate) fn nr(self) -> usize {
        match self {
            Kernel::Scalar8x4 => 4,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2_8x8 => 8,
        }
    }

    /// Stable name, for benchmarks and traces.
    pub(crate) fn name(self) -> &'static str {
        match self {
            Kernel::Scalar8x4 => "scalar_8x4",
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2_8x8 => "avx2_8x8",
        }
    }

    /// Runs the micro-kernel over one panel-aligned row band (see
    /// [`band_body`] for the argument contract).
    pub(crate) fn run_band(
        self,
        ap: &[f32],
        bp: &[f32],
        k: usize,
        n: usize,
        rows: Range<usize>,
        band: &mut [f32],
    ) {
        match self {
            Kernel::Scalar8x4 => band_body::<8, 4>(ap, bp, k, n, rows, band),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `select` only yields this variant after runtime
            // detection of AVX2 and FMA (or an explicit override, which
            // also re-checks support).
            Kernel::Avx2_8x8 => unsafe { band_avx2_8x8(ap, bp, k, n, rows, band) },
        }
    }

    /// The kernel every GEMM in this process uses: the widest variant
    /// the host supports, resolved once and cached. The
    /// `INSITU_GEMM_KERNEL` environment variable (`scalar` / `avx2` /
    /// `auto`) overrides detection — an unsupported request falls back
    /// to the portable kernel rather than faulting.
    pub(crate) fn select() -> Kernel {
        static SELECTED: OnceLock<Kernel> = OnceLock::new();
        *SELECTED.get_or_init(|| {
            let want = std::env::var("INSITU_GEMM_KERNEL").unwrap_or_default();
            match want.trim() {
                "scalar" => Kernel::Scalar8x4,
                _ => Kernel::detect(),
            }
        })
    }

    /// The widest variant the host supports.
    fn detect() -> Kernel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Kernel::Avx2_8x8;
            }
        }
        Kernel::Scalar8x4
    }

    /// Every variant the current host can run — the portable kernel is
    /// always included. Used by the property tests to assert that all
    /// runnable kernels agree bitwise.
    #[cfg(test)]
    pub(crate) fn supported() -> Vec<Kernel> {
        let mut v = vec![Kernel::Scalar8x4];
        #[cfg(target_arch = "x86_64")]
        if let k @ Kernel::Avx2_8x8 = Kernel::detect() {
            v.push(k);
        }
        v
    }
}
