//! # insitu-fpga
//!
//! A cycle-approximate simulator of the paper's FPGA co-running
//! architectures: the NWS and WS baselines, the proposed two-level
//! Weight-Share-Share (WSS) design built from output-neuron PE arrays,
//! the off-chip weight-traffic accounting under CONV-0/3/5 sharing,
//! and the WSS-Group + NWS two-stage pipeline with its Eq. (10)–(14)
//! configuration model.
//!
//! ## Example
//!
//! ```
//! use insitu_fpga::{ArchKind, CorunConfig};
//! use insitu_devices::NetworkShapes;
//!
//! let convs = NetworkShapes::alexnet().convs();
//! let cfg = CorunConfig::paper(3); // CONV-3 sharing, 2628 PEs
//! let wss = cfg.run(ArchKind::Wss, &convs);
//! let ws = cfg.run(ArchKind::Ws, &convs);
//! assert!(wss.total_s() < ws.total_s());
//! ```

#![warn(missing_docs)]

mod arch;
mod engine;
mod memory;
mod pipeline;

pub use arch::{ArchKind, CorunConfig, CorunReport, PATCHES};
pub use engine::{DotProductEngine, PeArrayEngine};
pub use memory::{conv_weight_bytes, corun_traffic, SharingLevel, TrafficReport};
pub use pipeline::{design_throughput, Design, ThroughputPoint, WssNwsPipeline};
