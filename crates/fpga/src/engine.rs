//! The two convolution-engine styles the paper contrasts.
//!
//! * [`DotProductEngine`] — the classical design (paper Fig. 10): `Tm`
//!   vector dot-product units of width `Tn`, unrolling input/output
//!   feature maps. Its efficiency follows Eq. (4) and suffers when `N`
//!   or `M` does not divide evenly.
//! * [`PeArrayEngine`] — the WSS building block (paper Fig. 18): a
//!   `Tr x Tc` grid of processing elements, one per output neuron, with
//!   a single kernel weight broadcast to all PEs each cycle. Because
//!   every PE computes a real output neuron, compute resources can be
//!   allocated *proportionally to layer load*, which is what removes
//!   the idleness of the uniform design.

use insitu_devices::{ConvShape, FcShape};
use serde::{Deserialize, Serialize};

/// A `Tm x Tn` dot-product convolution engine (paper Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DotProductEngine {
    /// Output-feature-map unroll factor.
    pub tm: u32,
    /// Input-feature-map unroll factor.
    pub tn: u32,
}

impl DotProductEngine {
    /// Processing elements (multipliers) in the engine.
    pub fn pe_count(&self) -> u32 {
        self.tm * self.tn
    }

    /// Cycles to execute one CONV layer for one sample.
    pub fn conv_cycles(&self, s: &ConvShape) -> u64 {
        (s.n.div_ceil(self.tn as usize) * s.m.div_ceil(self.tm as usize)) as u64
            * (s.r * s.c) as u64
            * (s.k * s.k) as u64
    }

    /// Cycles to execute one FCN layer for one sample (`K = R = C = 1`).
    pub fn fc_cycles(&self, s: &FcShape) -> u64 {
        (s.input.div_ceil(self.tn as usize) * s.output.div_ceil(self.tm as usize)) as u64
    }

    /// Paper Eq. (4): fraction of multipliers doing useful work.
    pub fn utilization(&self, s: &ConvShape) -> f64 {
        let (tn, tm) = (self.tn as usize, self.tm as usize);
        (s.n * s.m) as f64 / (tn * tm * s.n.div_ceil(tn) * s.m.div_ceil(tm)) as f64
    }

    /// Chooses the best `(Tm, Tn)` under a PE budget for a layer set:
    /// minimizes total conv cycles. Unroll factors are restricted to
    /// powers of two, matching realistic RTL generators (and the
    /// uniform-unrolling constraint of the paper's WS design).
    pub fn fit(convs: &[ConvShape], pe_budget: u32) -> DotProductEngine {
        let mut best = DotProductEngine { tm: 1, tn: 1 };
        let mut best_cycles = u64::MAX;
        let candidates: Vec<u32> =
            (0..=12).map(|p| 1u32 << p).filter(|&x| x <= pe_budget.max(1)).collect();
        for &tm in &candidates {
            for &tn in &candidates {
                if tm * tn > pe_budget {
                    continue;
                }
                let e = DotProductEngine { tm, tn };
                let cycles: u64 = convs.iter().map(|s| e.conv_cycles(s)).sum();
                if cycles < best_cycles
                    || (cycles == best_cycles && e.pe_count() < best.pe_count())
                {
                    best_cycles = cycles;
                    best = e;
                }
            }
        }
        best
    }
}

/// A `Tr x Tc` output-neuron PE array (paper Fig. 18, one convolution
/// engine of the WSS architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeArrayEngine {
    /// Output-row unroll factor.
    pub tr: u32,
    /// Output-column unroll factor.
    pub tc: u32,
}

impl PeArrayEngine {
    /// Processing elements in the array.
    pub fn pe_count(&self) -> u32 {
        self.tr * self.tc
    }

    /// Cycles to execute one CONV layer for one sample when this engine
    /// is one of `group_size` engines splitting the `M` filters
    /// (paper Eq. (11)).
    pub fn conv_cycles(&self, s: &ConvShape, group_size: usize) -> u64 {
        s.m.div_ceil(group_size.max(1)) as u64
            * (s.n * s.k * s.k) as u64
            * s.r.div_ceil(self.tr as usize) as u64
            * s.c.div_ceil(self.tc as usize) as u64
    }

    /// Fraction of PEs holding a real output neuron on the final
    /// row/column tiles.
    pub fn utilization(&self, s: &ConvShape) -> f64 {
        let (tr, tc) = (self.tr as usize, self.tc as usize);
        (s.r * s.c) as f64 / (tr * tc * s.r.div_ceil(tr) * s.c.div_ceil(tc)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> ConvShape {
        ConvShape { m: 96, n: 3, k: 11, r: 55, c: 55 }
    }

    #[test]
    fn dot_product_cycles_formula() {
        let e = DotProductEngine { tm: 32, tn: 3 };
        // ceil(3/3)*ceil(96/32) * 55*55*121 = 3 * 55*55*121
        assert_eq!(e.conv_cycles(&conv()), 3 * 55 * 55 * 121);
        assert_eq!(e.pe_count(), 96);
    }

    #[test]
    fn dot_product_fc_cycles() {
        let e = DotProductEngine { tm: 64, tn: 32 };
        let fc = FcShape { input: 9216, output: 4096 };
        assert_eq!(e.fc_cycles(&fc), (9216 / 32 * 4096 / 64) as u64);
    }

    #[test]
    fn eq4_utilization() {
        let e = DotProductEngine { tm: 32, tn: 4 };
        // N=3, M=96: 288 / (4*32*1*3) = 0.75
        assert!((e.utilization(&conv()) - 0.75).abs() < 1e-12);
        let perfect = DotProductEngine { tm: 96, tn: 3 };
        assert!((perfect.utilization(&conv()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_respects_budget_and_beats_naive() {
        let convs = [conv(), ConvShape { m: 256, n: 96, k: 5, r: 27, c: 27 }];
        let e = DotProductEngine::fit(&convs, 512);
        assert!(e.pe_count() <= 512);
        let naive = DotProductEngine { tm: 16, tn: 16 };
        let fit_cycles: u64 = convs.iter().map(|s| e.conv_cycles(s)).sum();
        let naive_cycles: u64 = convs.iter().map(|s| naive.conv_cycles(s)).sum();
        assert!(fit_cycles <= naive_cycles);
    }

    #[test]
    fn pe_array_cycles_eq11() {
        let e = PeArrayEngine { tr: 14, tc: 14 };
        let s = conv();
        // ceil(M/G)*N*K²*ceil(R/Tr)*ceil(C/Tc)
        let expect = (96f64 / 4.0).ceil() as u64 * 3 * 121 * 4 * 4;
        assert_eq!(e.conv_cycles(&s, 4), expect);
        assert_eq!(e.pe_count(), 196);
    }

    #[test]
    fn pe_array_more_cycles_with_smaller_group() {
        let e = PeArrayEngine { tr: 14, tc: 14 };
        let s = conv();
        assert!(e.conv_cycles(&s, 1) > e.conv_cycles(&s, 4));
        assert_eq!(e.conv_cycles(&s, 0), e.conv_cycles(&s, 1)); // clamped
    }

    #[test]
    fn pe_array_utilization_tail_effect() {
        let e = PeArrayEngine { tr: 14, tc: 14 };
        // 55x55 output over 14x14 tiles: 3025 / (196 * 4 * 4) ≈ 0.965
        let u = e.utilization(&conv());
        assert!(u > 0.9 && u < 1.0);
        let exact = PeArrayEngine { tr: 11, tc: 11 };
        assert!((exact.utilization(&conv()) - 1.0).abs() < 1e-12);
    }
}
