//! The three co-running CONV architectures the paper compares at equal
//! PE count (its Fig. 22): NWS, WS and the proposed two-level
//! weight-shared WSS.

use crate::engine::{DotProductEngine, PeArrayEngine};
use crate::memory::{corun_traffic, SharingLevel, TrafficReport};
use insitu_devices::{ConvShape, FpgaSpec};
use serde::{Deserialize, Serialize};

/// Number of diagnosis patch inputs (3×3 jigsaw grid).
pub const PATCHES: usize = 9;

/// Which CONV architecture executes the co-running tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchKind {
    /// No weight sharing: one large dot-product engine time-multiplexed
    /// over the inference task and the 9 diagnosis patches.
    Nws,
    /// Weight-shared uniform engines (paper Fig. 17): one inference
    /// engine + 9 diagnosis engines with the *same* unrolling, fed in
    /// lockstep — the diagnosis engines idle on their lighter load.
    Ws,
    /// The proposed two-level Weight-Share-Share design (paper
    /// Fig. 18): PE arrays unrolled over output neurons, sized
    /// proportionally to load (14×14 inference, 9× 7×7 diagnosis).
    Wss,
}

impl ArchKind {
    /// All three, in presentation order.
    pub fn all() -> [ArchKind; 3] {
        [ArchKind::Nws, ArchKind::Ws, ArchKind::Wss]
    }

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ArchKind::Nws => "NWS",
            ArchKind::Ws => "WS",
            ArchKind::Wss => "WSS",
        }
    }
}

/// Result of co-running all CONV layers once through an architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorunReport {
    /// Architecture evaluated.
    pub arch: ArchKind,
    /// Seconds of compute (engine-limited).
    pub compute_s: f64,
    /// Seconds of off-chip weight access.
    pub data_access_s: f64,
    /// Fraction of diagnosis-engine cycles spent idle (the paper
    /// reports ~75% for WS).
    pub diagnosis_idle_fraction: f64,
    /// Weight traffic detail.
    pub traffic: TrafficReport,
}

impl CorunReport {
    /// Total runtime: weights are loaded per layer before computing, so
    /// the phases serialize (the paper's Fig. 22 experiment does
    /// exactly this).
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.data_access_s
    }
}

/// A co-running CONV evaluation at a fixed PE budget.
#[derive(Debug, Clone)]
pub struct CorunConfig {
    /// FPGA device constants.
    pub spec: FpgaSpec,
    /// Total processing elements shared by all engines (the paper
    /// uses 2628).
    pub pe_budget: u32,
    /// Number of leading CONV layers that are weight-shared between
    /// the tasks (the paper's CONV-0/3/5).
    pub shared_layers: usize,
}

impl CorunConfig {
    /// The paper's configuration: VX690T, 2628 PEs.
    pub fn paper(shared_layers: usize) -> CorunConfig {
        CorunConfig { spec: FpgaSpec::vx690t(), pe_budget: 2628, shared_layers }
    }

    /// Evaluates one architecture on the inference CONV stack
    /// (diagnosis layers are the spatially-halved twins, 9 patches).
    pub fn run(&self, arch: ArchKind, inference_convs: &[ConvShape]) -> CorunReport {
        let diag_convs: Vec<ConvShape> =
            inference_convs.iter().map(ConvShape::halved_spatial).collect();
        let freq = self.spec.freq_hz;
        let (compute_s, idle) = match arch {
            ArchKind::Nws => {
                let engine = DotProductEngine::fit(inference_convs, self.pe_budget);
                let inf: u64 = inference_convs.iter().map(|s| engine.conv_cycles(s)).sum();
                let diag: u64 = diag_convs
                    .iter()
                    .map(|s| engine.conv_cycles(s) * PATCHES as u64)
                    .sum();
                ((inf + diag) as f64 / freq, 0.0)
            }
            ArchKind::Ws => {
                // 10 uniform engines share the budget; the input stream
                // paces everyone at the inference engine's rate.
                let per_engine = self.pe_budget / (PATCHES as u32 + 1);
                let engine = DotProductEngine::fit(inference_convs, per_engine);
                let inf: u64 = inference_convs.iter().map(|s| engine.conv_cycles(s)).sum();
                let diag_per_patch: u64 =
                    diag_convs.iter().map(|s| engine.conv_cycles(s)).sum();
                let stage = inf.max(diag_per_patch);
                let idle = 1.0 - diag_per_patch as f64 / stage as f64;
                (stage as f64 / freq, idle)
            }
            ArchKind::Wss => {
                // Load-proportional PE arrays: 14x14 inference + 9x 7x7
                // diagnosis per WSS instance; instances gang into a
                // group that splits the M filters (paper Eq. 11).
                let inf_engine = PeArrayEngine { tr: 14, tc: 14 };
                let diag_engine = PeArrayEngine { tr: 7, tc: 7 };
                let per_wss =
                    inf_engine.pe_count() + PATCHES as u32 * diag_engine.pe_count();
                let group = (self.pe_budget / per_wss).max(1) as usize;
                let mut total = 0u64;
                let mut idle_acc = 0.0;
                for (s, d) in inference_convs.iter().zip(&diag_convs) {
                    let inf = inf_engine.conv_cycles(s, group);
                    let diag = diag_engine.conv_cycles(d, group);
                    let stage = inf.max(diag);
                    total += stage;
                    idle_acc += 1.0 - diag.min(stage) as f64 / stage as f64;
                }
                (total as f64 / freq, idle_acc / inference_convs.len() as f64)
            }
        };
        let level = match arch {
            ArchKind::Nws => SharingLevel::None,
            ArchKind::Ws | ArchKind::Wss => SharingLevel::TwoLevel,
        };
        let traffic = corun_traffic(inference_convs, self.shared_layers, PATCHES, level);
        CorunReport {
            arch,
            compute_s,
            data_access_s: traffic.total_bytes() as f64 / self.spec.mem_bw,
            diagnosis_idle_fraction: idle,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_devices::NetworkShapes;

    fn convs() -> Vec<ConvShape> {
        NetworkShapes::alexnet().convs()
    }

    #[test]
    fn wss_has_best_compute_time() {
        // Paper Fig. 22: WSS < NWS < WS on compute time.
        let cfg = CorunConfig::paper(3);
        let convs = convs();
        let nws = cfg.run(ArchKind::Nws, &convs);
        let ws = cfg.run(ArchKind::Ws, &convs);
        let wss = cfg.run(ArchKind::Wss, &convs);
        assert!(
            wss.compute_s < nws.compute_s,
            "wss {} vs nws {}",
            wss.compute_s,
            nws.compute_s
        );
        assert!(nws.compute_s < ws.compute_s, "nws {} vs ws {}", nws.compute_s, ws.compute_s);
    }

    #[test]
    fn ws_diagnosis_idles_about_75_percent() {
        let cfg = CorunConfig::paper(3);
        let ws = cfg.run(ArchKind::Ws, &convs());
        assert!(
            ws.diagnosis_idle_fraction > 0.6 && ws.diagnosis_idle_fraction < 0.85,
            "idle {}",
            ws.diagnosis_idle_fraction
        );
    }

    #[test]
    fn wss_engines_balanced() {
        let cfg = CorunConfig::paper(3);
        let wss = cfg.run(ArchKind::Wss, &convs());
        assert!(wss.diagnosis_idle_fraction < 0.25, "idle {}", wss.diagnosis_idle_fraction);
    }

    #[test]
    fn data_access_falls_with_sharing_depth_for_wss() {
        let convs = convs();
        let t0 = CorunConfig::paper(0).run(ArchKind::Wss, &convs).data_access_s;
        let t3 = CorunConfig::paper(3).run(ArchKind::Wss, &convs).data_access_s;
        let t5 = CorunConfig::paper(5).run(ArchKind::Wss, &convs).data_access_s;
        assert!(t0 > t3 && t3 > t5);
    }

    #[test]
    fn nws_data_access_exceeds_wss() {
        let cfg = CorunConfig::paper(0);
        let convs = convs();
        let nws = cfg.run(ArchKind::Nws, &convs);
        let wss = cfg.run(ArchKind::Wss, &convs);
        assert!(nws.data_access_s > 2.0 * wss.data_access_s);
    }

    #[test]
    fn total_time_ordering_matches_fig22() {
        // End to end (compute + access), WSS wins under every sharing
        // strategy.
        let convs = convs();
        for shared in [0usize, 3, 5] {
            let cfg = CorunConfig::paper(shared);
            let wss = cfg.run(ArchKind::Wss, &convs).total_s();
            let ws = cfg.run(ArchKind::Ws, &convs).total_s();
            let nws = cfg.run(ArchKind::Nws, &convs).total_s();
            assert!(wss < ws && wss < nws, "shared={shared}: wss {wss} ws {ws} nws {nws}");
        }
    }

    #[test]
    fn arch_names() {
        assert_eq!(ArchKind::all().map(|a| a.name()), ["NWS", "WS", "WSS"]);
    }
}
