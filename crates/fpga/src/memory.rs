//! Off-chip weight traffic accounting under the sharing strategies.
//!
//! The paper's two-level sharing works on two axes:
//!
//! 1. **Task-level** — the first `n` CONV layers of the inference and
//!    diagnosis networks hold identical weights (transfer learning), so
//!    a shared weight buffer serves both tasks (paper Fig. 17's `SW`
//!    source). The evaluation sweeps `n` ∈ {0, 3, 5} as CONV-0/3/5.
//! 2. **Patch-level** — the 9 diagnosis patch engines always share one
//!    weight stream (they run the *same* network on different tiles),
//!    and inside a PE-array engine one weight is broadcast to all PEs.
//!
//! An architecture without any provision for sharing (NWS) must stream
//! the diagnosis weights once per patch engine.

use insitu_devices::ConvShape;
use serde::{Deserialize, Serialize};

/// How weights reach the convolution engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharingLevel {
    /// No sharing at all: every consumer streams its own copy.
    None,
    /// Task-level and patch-level sharing (WS and WSS).
    TwoLevel,
}

/// Weight-traffic accounting for one co-running CONV execution
/// (inference + 9-patch diagnosis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Bytes streamed for the inference task's weights.
    pub inference_bytes: u64,
    /// Bytes streamed for the diagnosis task's weights.
    pub diagnosis_bytes: u64,
}

impl TrafficReport {
    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.inference_bytes + self.diagnosis_bytes
    }
}

/// Weight bytes of one conv layer (fp32).
pub fn conv_weight_bytes(s: &ConvShape) -> u64 {
    (s.m * s.n * s.k * s.k) as u64 * 4
}

/// Computes the weight traffic to execute all `convs` layers of the
/// inference network co-run with the diagnosis network (same conv
/// shapes, `patches` tiles), with the first `shared_layers` layers
/// weight-shared between tasks.
pub fn corun_traffic(
    convs: &[ConvShape],
    shared_layers: usize,
    patches: usize,
    level: SharingLevel,
) -> TrafficReport {
    let mut inference_bytes = 0u64;
    let mut diagnosis_bytes = 0u64;
    for (i, s) in convs.iter().enumerate() {
        let w = conv_weight_bytes(s);
        match level {
            SharingLevel::None => {
                // Inference streams its copy; every patch engine
                // streams its own diagnosis copy.
                inference_bytes += w;
                diagnosis_bytes += w * patches as u64;
            }
            SharingLevel::TwoLevel => {
                if i < shared_layers {
                    // One stream feeds both tasks and all patch engines.
                    inference_bytes += w;
                } else {
                    // Dedicated per task, but patch engines still share.
                    inference_bytes += w;
                    diagnosis_bytes += w;
                }
            }
        }
    }
    TrafficReport { inference_bytes, diagnosis_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn convs() -> Vec<ConvShape> {
        vec![
            ConvShape { m: 96, n: 3, k: 11, r: 55, c: 55 },
            ConvShape { m: 256, n: 96, k: 5, r: 27, c: 27 },
            ConvShape { m: 384, n: 256, k: 3, r: 13, c: 13 },
            ConvShape { m: 384, n: 384, k: 3, r: 13, c: 13 },
            ConvShape { m: 256, n: 384, k: 3, r: 13, c: 13 },
        ]
    }

    #[test]
    fn weight_bytes_formula() {
        let s = ConvShape { m: 4, n: 3, k: 2, r: 1, c: 1 };
        assert_eq!(conv_weight_bytes(&s), 4 * 3 * 4 * 4);
    }

    #[test]
    fn nws_pays_per_patch() {
        let t = corun_traffic(&convs(), 0, 9, SharingLevel::None);
        let w_total: u64 = convs().iter().map(conv_weight_bytes).sum();
        assert_eq!(t.inference_bytes, w_total);
        assert_eq!(t.diagnosis_bytes, 9 * w_total);
    }

    #[test]
    fn two_level_sharing_collapses_patches() {
        let t = corun_traffic(&convs(), 0, 9, SharingLevel::TwoLevel);
        let w_total: u64 = convs().iter().map(conv_weight_bytes).sum();
        // CONV-0: no task sharing, but patch engines share one stream.
        assert_eq!(t.total_bytes(), 2 * w_total);
    }

    #[test]
    fn traffic_decreases_with_shared_layers() {
        // Paper Fig. 22: data-access time decreases as the number of
        // shared layers increases (CONV-0 → CONV-3 → CONV-5).
        let t0 = corun_traffic(&convs(), 0, 9, SharingLevel::TwoLevel).total_bytes();
        let t3 = corun_traffic(&convs(), 3, 9, SharingLevel::TwoLevel).total_bytes();
        let t5 = corun_traffic(&convs(), 5, 9, SharingLevel::TwoLevel).total_bytes();
        assert!(t0 > t3);
        assert!(t3 > t5);
        // CONV-5: everything shared once.
        let w_total: u64 = convs().iter().map(conv_weight_bytes).sum();
        assert_eq!(t5, w_total);
    }

    #[test]
    fn nws_is_insensitive_to_sharing_depth() {
        let a = corun_traffic(&convs(), 0, 9, SharingLevel::None).total_bytes();
        let b = corun_traffic(&convs(), 5, 9, SharingLevel::None).total_bytes();
        assert_eq!(a, b);
    }
}
