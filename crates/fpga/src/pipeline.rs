//! The full In-situ AI FPGA architecture: a WSS Group feeding an NWS
//! FCN stage through a two-stage pipeline (paper Figs. 19–20,
//! Eqs. 10–14), plus the three baseline designs of the paper's Fig. 23.

use crate::arch::PATCHES;
use crate::engine::{DotProductEngine, PeArrayEngine};
use crate::memory::{corun_traffic, SharingLevel};
use insitu_devices::{ConvShape, FcShape, FpgaSpec, NetworkShapes};
use serde::{Deserialize, Serialize};

/// The four end-to-end designs compared in the paper's Fig. 23.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// Dot-product engines, no weight sharing, no FCN batching.
    Nws,
    /// NWS plus the FCN batch-reuse loop.
    NwsBatch,
    /// Uniform weight-shared engines (idle diagnosis PEs) + batched FCN.
    Ws,
    /// The proposed WSS Group + NWS pipeline.
    WssNws,
}

impl Design {
    /// All four, in presentation order.
    pub fn all() -> [Design; 4] {
        [Design::Nws, Design::NwsBatch, Design::Ws, Design::WssNws]
    }

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Design::Nws => "NWS",
            Design::NwsBatch => "NWS-batch",
            Design::Ws => "WS",
            Design::WssNws => "WSS-NWS",
        }
    }
}

/// The configured WSS-Group + NWS pipeline.
#[derive(Debug, Clone)]
pub struct WssNwsPipeline {
    spec: FpgaSpec,
    inf_engine: PeArrayEngine,
    diag_engine: PeArrayEngine,
    /// WSS instances ganged over the `M` filters (paper's
    /// `WSS_Groupsize`).
    pub group_size: usize,
    /// The FCN stage's dot-product engine.
    pub nws_engine: DotProductEngine,
}

/// One throughput evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Chosen batch size.
    pub batch: usize,
    /// Achieved throughput, images/second.
    pub throughput: f64,
    /// End-to-end latency at that batch, seconds.
    pub latency_s: f64,
}

impl WssNwsPipeline {
    /// Configures the pipeline under the DSP constraint of Eq. (10):
    /// `WSS_Groupsize · DSP_WSS + DSP_NWS ≤ DSP_total`. The search
    /// balances the two pipeline stages (Fig. 20 wants equal stage
    /// times) across group sizes.
    pub fn configure(spec: FpgaSpec, convs: &[ConvShape], fcs: &[FcShape]) -> WssNwsPipeline {
        let inf_engine = PeArrayEngine { tr: 14, tc: 14 };
        let diag_engine = PeArrayEngine { tr: 7, tc: 7 };
        let per_wss = inf_engine.pe_count() + PATCHES as u32 * diag_engine.pe_count();
        let max_group = (spec.dsp_total / per_wss).max(1) as usize;
        let mut best: Option<(WssNwsPipeline, f64)> = None;
        for group in 1..=max_group {
            let nws_budget = spec.dsp_total - group as u32 * per_wss;
            if nws_budget < 16 {
                continue;
            }
            // FCN layers are 1x1 convs for the fitting purpose.
            let fc_as_conv: Vec<ConvShape> = fcs
                .iter()
                .map(|f| ConvShape { m: f.output, n: f.input, k: 1, r: 1, c: 1 })
                .collect();
            let nws_engine = DotProductEngine::fit(&fc_as_conv, nws_budget);
            let candidate = WssNwsPipeline {
                spec,
                inf_engine,
                diag_engine,
                group_size: group,
                nws_engine,
            };
            // Balance criterion: steady-state throughput at a medium batch.
            let tput = candidate.throughput(convs, fcs, 8);
            if best.as_ref().is_none_or(|(_, t)| tput > *t) {
                best = Some((candidate, tput));
            }
        }
        best.expect("at least one group size fits").0
    }

    /// Configures the pipeline with a *forced* WSS group size (used by
    /// the design-space ablation). Returns `None` when the group plus a
    /// minimal NWS engine does not fit the DSP budget of Eq. (10).
    pub fn configure_fixed_group(
        spec: FpgaSpec,
        fcs: &[FcShape],
        group_size: usize,
    ) -> Option<WssNwsPipeline> {
        let inf_engine = PeArrayEngine { tr: 14, tc: 14 };
        let diag_engine = PeArrayEngine { tr: 7, tc: 7 };
        let per_wss = inf_engine.pe_count() + PATCHES as u32 * diag_engine.pe_count();
        let used = group_size as u32 * per_wss;
        if group_size == 0 || used + 16 > spec.dsp_total {
            return None;
        }
        let fc_as_conv: Vec<ConvShape> = fcs
            .iter()
            .map(|f| ConvShape { m: f.output, n: f.input, k: 1, r: 1, c: 1 })
            .collect();
        let nws_engine = DotProductEngine::fit(&fc_as_conv, spec.dsp_total - used);
        Some(WssNwsPipeline { spec, inf_engine, diag_engine, group_size, nws_engine })
    }

    /// Paper Eq. (11): CONV-stage time for ONE image through the WSS
    /// Group (inference and diagnosis run concurrently; each layer is
    /// paced by the slower of the two).
    pub fn conv_stage_s(&self, convs: &[ConvShape]) -> f64 {
        let mut cycles = 0u64;
        for s in convs {
            let inf = self.inf_engine.conv_cycles(s, self.group_size);
            let diag = self.diag_engine.conv_cycles(&s.halved_spatial(), self.group_size);
            cycles += inf.max(diag);
        }
        cycles as f64 / self.spec.freq_hz
    }

    /// Paper Eq. (12): FCN-stage time for a batch on the NWS engine
    /// (compute vs memory roofline; batched weight reuse).
    pub fn fcn_stage_s(&self, fcs: &[FcShape], batch: usize) -> f64 {
        let mut total = 0.0;
        for f in fcs {
            let compute =
                self.nws_engine.fc_cycles(f) as f64 * batch as f64 / self.spec.freq_hz;
            let bytes = f.dw_elems() * 4 + 4 * (f.input + f.output) as u64 * batch as u64;
            let mem = bytes as f64 / self.spec.mem_bw;
            total += compute.max(mem);
        }
        total
    }

    /// Paper Eq. (13): end-to-end latency of one batch through the
    /// two-stage pipeline.
    pub fn latency_s(&self, convs: &[ConvShape], fcs: &[FcShape], batch: usize) -> f64 {
        2.0 * (self.conv_stage_s(convs) * batch as f64).max(self.fcn_stage_s(fcs, batch))
    }

    /// Steady-state throughput at a batch size: the pipeline initiates
    /// a new batch every `max(stage)` seconds.
    pub fn throughput(&self, convs: &[ConvShape], fcs: &[FcShape], batch: usize) -> f64 {
        let stage = (self.conv_stage_s(convs) * batch as f64).max(self.fcn_stage_s(fcs, batch));
        batch as f64 / stage
    }

    /// Paper Eq. (14): the best batch meeting the user latency bound,
    /// maximizing throughput. Returns `None` when even batch 1 misses.
    pub fn best_under_latency(
        &self,
        convs: &[ConvShape],
        fcs: &[FcShape],
        t_user: f64,
        max_batch: usize,
    ) -> Option<ThroughputPoint> {
        (1..=max_batch)
            .filter_map(|b| {
                let latency = self.latency_s(convs, fcs, b);
                (latency <= t_user).then(|| ThroughputPoint {
                    batch: b,
                    throughput: self.throughput(convs, fcs, b),
                    latency_s: latency,
                })
            })
            .max_by(|a, b| {
                a.throughput.partial_cmp(&b.throughput).unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

/// Evaluates one of the paper's four designs at a latency requirement,
/// on the co-running pair (inference network + diagnosis twin):
/// returns the best feasible throughput point, or `None` when the
/// design cannot meet the bound (the paper's ✗ for WS at 50 ms).
pub fn design_throughput(
    design: Design,
    spec: FpgaSpec,
    net: &NetworkShapes,
    t_user: f64,
    max_batch: usize,
) -> Option<ThroughputPoint> {
    let convs = net.convs();
    let fcs = net.fcs();
    match design {
        Design::WssNws => {
            let pipe = WssNwsPipeline::configure(spec, &convs, &fcs);
            pipe.best_under_latency(&convs, &fcs, t_user, max_batch)
        }
        Design::Nws | Design::NwsBatch | Design::Ws => {
            let batch_opt = design != Design::Nws;
            // Non-pipelined designs split the fabric ~3:1 between the
            // CONV engines and the FCN engine.
            let conv_budget = spec.dsp_total * 3 / 4;
            // CONV engine setup per design.
            let conv_s_per_image: f64 = match design {
                Design::Ws => {
                    let per_engine = conv_budget / (PATCHES as u32 + 1);
                    let engine = DotProductEngine::fit(&convs, per_engine);
                    // Lockstep uniform engines: paced by inference.
                    convs.iter().map(|s| engine.conv_cycles(s)).sum::<u64>() as f64
                        / spec.freq_hz
                }
                _ => {
                    let engine = DotProductEngine::fit(&convs, conv_budget);
                    // Serial inference + 9 diagnosis patches.
                    convs
                        .iter()
                        .map(|s| {
                            engine.conv_cycles(s)
                                + PATCHES as u64
                                    * engine.conv_cycles(&s.halved_spatial())
                        })
                        .sum::<u64>() as f64
                        / spec.freq_hz
                }
            };
            let fc_engine = {
                let fc_as_conv: Vec<ConvShape> = fcs
                    .iter()
                    .map(|f| ConvShape { m: f.output, n: f.input, k: 1, r: 1, c: 1 })
                    .collect();
                DotProductEngine::fit(&fc_as_conv, spec.dsp_total / 4)
            };
            let fc_s = |batch: usize| -> f64 {
                fcs.iter()
                    .map(|f| {
                        let compute = fc_engine.fc_cycles(f) as f64 * batch as f64
                            / spec.freq_hz;
                        let loads = if batch_opt { 1 } else { batch as u64 };
                        let bytes = f.dw_elems() * 4 * loads
                            + 4 * (f.input + f.output) as u64 * batch as u64;
                        compute.max(bytes as f64 / spec.mem_bw)
                    })
                    .sum()
            };
            // Non-pipelined designs cannot overlap conv weight
            // streaming with compute. Plain NWS has *no* reuse
            // provision at all: it re-streams the co-run weights for
            // every image. The batch-optimized and weight-shared
            // designs stream once per batch (WS additionally shares
            // the CONV-3 task prefix).
            let level = if design == Design::Ws {
                SharingLevel::TwoLevel
            } else {
                SharingLevel::None
            };
            let conv_access_s =
                corun_traffic(&convs, 3, PATCHES, level).total_bytes() as f64 / spec.mem_bw;
            let access_per_image = design == Design::Nws;
            (1..=max_batch)
                .filter_map(|b| {
                    // Non-pipelined: weight load, conv, then fc — serial.
                    let access = if access_per_image {
                        conv_access_s * b as f64
                    } else {
                        conv_access_s
                    };
                    let latency = access + conv_s_per_image * b as f64 + fc_s(b);
                    (latency <= t_user).then(|| ThroughputPoint {
                        batch: b,
                        throughput: b as f64 / latency,
                        latency_s: latency,
                    })
                })
                .max_by(|a, b| {
                    a.throughput
                        .partial_cmp(&b.throughput)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkShapes {
        NetworkShapes::alexnet()
    }

    fn spec() -> FpgaSpec {
        FpgaSpec::vx690t()
    }

    #[test]
    fn pipeline_configures_within_dsp_budget() {
        let n = net();
        let pipe = WssNwsPipeline::configure(spec(), &n.convs(), &n.fcs());
        let per_wss = 196 + 9 * 49;
        let used = pipe.group_size as u32 * per_wss + pipe.nws_engine.pe_count();
        assert!(used <= spec().dsp_total, "used {used}");
        assert!(pipe.group_size >= 1);
    }

    #[test]
    fn latency_is_eq13() {
        let n = net();
        let pipe = WssNwsPipeline::configure(spec(), &n.convs(), &n.fcs());
        let b = 4;
        let conv = pipe.conv_stage_s(&n.convs()) * b as f64;
        let fcn = pipe.fcn_stage_s(&n.fcs(), b);
        assert!((pipe.latency_s(&n.convs(), &n.fcs(), b) - 2.0 * conv.max(fcn)).abs() < 1e-12);
    }

    #[test]
    fn throughput_grows_with_latency_budget() {
        // Paper Fig. 23: looser latency → bigger batch → higher
        // throughput, until the FCN compute bound.
        let n = net();
        let points: Vec<f64> = [0.05, 0.1, 0.2, 0.4, 0.8]
            .iter()
            .map(|&t| {
                design_throughput(Design::WssNws, spec(), &n, t, 256)
                    .expect("WSS-NWS always feasible")
                    .throughput
            })
            .collect();
        for w in points.windows(2) {
            assert!(w[1] >= w[0] * 0.999, "{points:?}");
        }
        assert!(points[4] > points[0]);
    }

    #[test]
    fn nws_throughput_is_flat() {
        let n = net();
        let t50 = design_throughput(Design::Nws, spec(), &n, 0.2, 256);
        let t800 = design_throughput(Design::Nws, spec(), &n, 0.8, 256);
        if let (Some(a), Some(b)) = (t50, t800) {
            assert!((b.throughput - a.throughput).abs() / a.throughput < 0.1);
        } else {
            panic!("NWS should be feasible at 200/800 ms");
        }
    }

    #[test]
    fn nws_batch_beats_nws() {
        let n = net();
        let plain = design_throughput(Design::Nws, spec(), &n, 0.8, 256).unwrap();
        let batched = design_throughput(Design::NwsBatch, spec(), &n, 0.8, 256).unwrap();
        assert!(batched.throughput > plain.throughput);
    }

    #[test]
    fn ws_infeasible_at_tight_latency() {
        // Paper Fig. 23 marks WS with ✗ at 50 ms.
        let n = net();
        assert!(design_throughput(Design::Ws, spec(), &n, 0.05, 256).is_none());
        assert!(design_throughput(Design::Ws, spec(), &n, 0.8, 256).is_some());
    }

    #[test]
    fn wss_nws_wins_everywhere() {
        let n = net();
        for &t in &[0.05, 0.1, 0.2, 0.4, 0.8] {
            let ours = design_throughput(Design::WssNws, spec(), &n, t, 256)
                .expect("feasible")
                .throughput;
            for d in [Design::Nws, Design::NwsBatch, Design::Ws] {
                if let Some(p) = design_throughput(d, spec(), &n, t, 256) {
                    assert!(
                        ours > p.throughput,
                        "{} beat us at {t}: {} vs {ours}",
                        d.name(),
                        p.throughput
                    );
                }
            }
        }
    }

    #[test]
    fn wss_nws_tightest_beats_nws_batch_loosest() {
        // Paper: NWS-batch's best (800 ms) is below WSS-NWS at 50 ms.
        let n = net();
        let ours_tight =
            design_throughput(Design::WssNws, spec(), &n, 0.05, 256).unwrap().throughput;
        let theirs_loose =
            design_throughput(Design::NwsBatch, spec(), &n, 0.8, 256).unwrap().throughput;
        assert!(
            ours_tight > theirs_loose,
            "ours@50ms {ours_tight} vs nws-batch@800ms {theirs_loose}"
        );
    }

    #[test]
    fn design_names() {
        assert_eq!(
            Design::all().map(|d| d.name()),
            ["NWS", "NWS-batch", "WS", "WSS-NWS"]
        );
    }
}
