//! Emits a machine-readable timing snapshot of the packed GEMM
//! kernels as JSON on stdout: one record per (shape, thread-count)
//! pair, in nanoseconds per iteration.
//!
//! ```text
//! cargo run --release -p insitu-bench --bin kernels_snapshot > BENCH_kernels.json
//! ```
//!
//! Criterion's reports are for humans; this snapshot is for diffing
//! across commits. The host core count is recorded, and the thread
//! sweep skips counts above it — on a single-core host a t2/t4 row
//! would measure pool overhead, not speedup (and `plan_parts` caps
//! kernel splits at the host cores anyway, so such rows would just
//! duplicate t1).
//!
//! Each row carries `gflops` (2·M·K·N per iteration over the measured
//! wall time) and, for the shapes with an embedded pre-packing
//! baseline, `baseline_ns_per_iter` + `speedup_vs_baseline` — the
//! before/after record of the packed-kernel rewrite. Every f32 row is
//! paired with a `"precision": "i8"` row timing the fixed-point GEMM
//! on the same shape; i8 rows carry `speedup_vs_f32` measured against
//! the f32 packed time at the same thread count *in this run*, so the
//! ratio is host-noise-free. Rows also carry
//! telemetry counter totals (GEMM calls, bytes per iteration, pool
//! jobs) and dispatch-latency percentiles (`p50_ns`/`p90_ns`/`p99_ns`
//! from the span-fed histogram) from a separate *counted* pass — the timed loop always runs
//! with telemetry disabled, so the ns/iter numbers stay comparable to
//! earlier snapshots. With `INSITU_TRACE=1` the final counted pass's
//! Chrome trace is written to stderr.
//!
//! Every row carries an `isa` field naming the vector body it timed
//! (the GEMM kernel name for GEMM rows, the dispatched ISA for op
//! rows). Besides the env-selected kernel, the sweep emits one
//! `"kind": "kernel"` row per *detected* GEMM kernel per
//! (shape, threads), timed interleaved against the portable
//! `scalar_8x4` kernel — `speedup_vs_scalar` there is a median of
//! per-rep ratios, so cross-ISA comparisons (AVX-512 vs AVX2 vs
//! scalar) are clock-drift-free within a row and can be compared
//! across rows of the same run.
//!
//! After the GEMM sweep the snapshot times the dispatched SIMD ops
//! (`op` rows: relu, maxpool, softmax, quantize_i8) at the paper's
//! activation shapes: each row measures the op's scalar body against
//! the auto-selected body interleaved — `speedup_vs_scalar` is a
//! median of per-rep ratios, so clock drift cancels — and reports
//! `gbps` from the op's own byte accounting. The header records which
//! ISA `speedup_vs_scalar` compares against (`simd_isa`); under
//! `INSITU_SIMD=scalar` both legs run the same body and the ratio
//! hovers at 1.
//!
//! `--quick` runs a shortened sweep (fewer timing reps) for CI smoke:
//! same fields, noisier numbers.

use insitu_telemetry as telemetry;
use insitu_tensor::simd::{
    dispatch_on, simd_isa_name, Isa, MaxPool2d, QuantizeI8, ReluTrain, SimdOp, SoftmaxRows,
};
use insitu_tensor::{
    gemm_kernel_name, gemm_kernels_supported, matmul, matmul_i8, matmul_with_kernel, max_abs,
    quant_scale, quantize_i8, set_num_threads, PoolGeometry, Rng, Tensor,
};
use std::fmt::Write as _;
use std::time::Instant;

/// im2col GEMM shapes of the reproduction's networks (per-sample
/// position count × batch 8), plus one square control.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("alex_conv2_b8", 24, 144, 324 * 8),
    ("alex_conv3_b8", 32, 216, 81 * 8),
    ("jigsaw_conv2_b8", 24, 144, 16 * 8),
    ("square_128", 128, 128, 128),
];

/// Single-thread ns/iter of the pre-packing cache-blocked kernel on
/// the reference host (commit 7dce89d), kept as the fixed "before" the
/// `speedup_vs_baseline` field is measured against.
const BASELINE_NS: &[(&str, u128)] = &[
    ("alex_conv2_b8", 1_812_097),
    ("alex_conv3_b8", 855_665),
    ("jigsaw_conv2_b8", 89_263),
    ("square_128", 404_629),
];

const THREADS: &[usize] = &[1, 2, 4];

/// Median-of-reps wall time per call, in nanoseconds.
fn time_matmul(a: &Tensor, b: &Tensor, quick: bool) -> u128 {
    // Warm-up: touches the buffers, grows the packing scratch to its
    // steady-state size and spins up any pool workers.
    for _ in 0..3 {
        std::hint::black_box(matmul(a, b).unwrap());
    }
    let (reps, iters) = if quick { (3, 3u32) } else { (7, 10u32) };
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(matmul(a, b).unwrap());
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times the i8 GEMM interleaved with the f32 GEMM on the same
/// operands: each rep measures both back to back, so `speedup_vs_f32`
/// is a median of per-rep ratios and clock drift between the two
/// measurements cancels out. Returns (i8 ns/iter, speedup vs f32).
fn time_matmul_i8_vs_f32(
    a: &Tensor,
    b: &Tensor,
    qa: &[i8],
    qb: &[i8],
    quick: bool,
) -> (u128, f64) {
    let (m, k, n) = (a.dims()[0], a.dims()[1], b.dims()[1]);
    for _ in 0..3 {
        std::hint::black_box(matmul(a, b).unwrap());
        std::hint::black_box(matmul_i8(qa, qb, m, k, n).unwrap());
    }
    let (reps, iters) = if quick { (3, 3u32) } else { (7, 10u32) };
    let mut i8_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(matmul(a, b).unwrap());
        }
        let f32_sample = start.elapsed().as_nanos() / u128::from(iters);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(matmul_i8(qa, qb, m, k, n).unwrap());
        }
        let i8_sample = start.elapsed().as_nanos() / u128::from(iters);
        i8_ns.push(i8_sample);
        ratios.push(f32_sample.max(1) as f64 / i8_sample.max(1) as f64);
    }
    i8_ns.sort_unstable();
    ratios.sort_by(f64::total_cmp);
    (i8_ns[i8_ns.len() / 2], ratios[ratios.len() / 2])
}

/// Times one named GEMM kernel interleaved with the portable
/// `scalar_8x4` kernel on the same operands, so the reported speedup
/// is a drift-free median of per-rep ratios. Returns
/// `(kernel ns/iter, scalar ns/iter, speedup_vs_scalar)`.
fn time_kernel_vs_scalar(a: &Tensor, b: &Tensor, kernel: &str, quick: bool) -> (u128, u128, f64) {
    for _ in 0..3 {
        std::hint::black_box(matmul_with_kernel(a, b, "scalar_8x4").unwrap());
        std::hint::black_box(matmul_with_kernel(a, b, kernel).unwrap());
    }
    let (reps, iters) = if quick { (3, 3u32) } else { (7, 10u32) };
    let mut ker_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut sca_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(matmul_with_kernel(a, b, "scalar_8x4").unwrap());
        }
        let s = start.elapsed().as_nanos() / u128::from(iters);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(matmul_with_kernel(a, b, kernel).unwrap());
        }
        let v = start.elapsed().as_nanos() / u128::from(iters);
        sca_ns.push(s);
        ker_ns.push(v);
        ratios.push(s.max(1) as f64 / v.max(1) as f64);
    }
    ker_ns.sort_unstable();
    sca_ns.sort_unstable();
    ratios.sort_by(f64::total_cmp);
    (ker_ns[ker_ns.len() / 2], sca_ns[sca_ns.len() / 2], ratios[ratios.len() / 2])
}

/// Times a SIMD op's scalar body against its auto-selected body,
/// interleaved per rep so the ratio is drift-free. Returns
/// `(selected ns/iter, scalar ns/iter, speedup_vs_scalar)`.
fn time_simd_pair(
    quick: bool,
    scalar: &mut dyn FnMut(),
    selected: &mut dyn FnMut(),
) -> (u128, u128, f64) {
    for _ in 0..3 {
        scalar();
        selected();
    }
    let (reps, iters) = if quick { (3, 5u32) } else { (7, 20u32) };
    let mut sel_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut sca_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            scalar();
        }
        let s = start.elapsed().as_nanos() / u128::from(iters);
        let start = Instant::now();
        for _ in 0..iters {
            selected();
        }
        let v = start.elapsed().as_nanos() / u128::from(iters);
        sca_ns.push(s);
        sel_ns.push(v);
        ratios.push(s.max(1) as f64 / v.max(1) as f64);
    }
    sel_ns.sort_unstable();
    sca_ns.sort_unstable();
    ratios.sort_by(f64::total_cmp);
    (sel_ns[sel_ns.len() / 2], sca_ns[sca_ns.len() / 2], ratios[ratios.len() / 2])
}

/// Appends one `op` row; `extra` carries op-specific fields (already
/// comma-prefixed or empty).
#[allow(clippy::too_many_arguments)]
fn push_op_row(
    rows: &mut String,
    op: &str,
    isa: &str,
    n: usize,
    threads: usize,
    bytes: u64,
    ns: u128,
    scalar_ns: u128,
    speedup: f64,
    extra: &str,
) {
    if !rows.is_empty() {
        rows.push_str(",\n");
    }
    let gbps = bytes as f64 / ns.max(1) as f64;
    let _ = write!(
        rows,
        "    {{\"op\": \"{op}\", \"isa\": \"{isa}\", \"n\": {n}, \"threads\": {threads}{extra}, \
         \"ns_per_iter\": {ns}, \"scalar_ns_per_iter\": {scalar_ns}, \
         \"gbps\": {gbps:.2}, \"speedup_vs_scalar\": {speedup:.2}}}"
    );
}

/// Iterations of the separately-counted (telemetry-enabled) pass.
const COUNT_ITERS: u64 = 10;

/// Runs a telemetry-enabled pass over the same GEMM and returns its
/// snapshot. Kept apart from [`time_matmul`] so tracing overhead never
/// touches the timed numbers.
fn counted_pass(a: &Tensor, b: &Tensor) -> telemetry::TelemetrySnapshot {
    telemetry::set_enabled(true);
    telemetry::reset();
    for _ in 0..COUNT_ITERS {
        std::hint::black_box(matmul(a, b).unwrap());
    }
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);
    telemetry::reset();
    snap
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let want_trace = telemetry::init_from_env();
    telemetry::set_enabled(false); // the counted passes open their own windows
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rng = Rng::seed_from(7);
    let mut rows = String::new();
    let mut last_snap = telemetry::TelemetrySnapshot::default();
    for &(name, m, k, n) in SHAPES {
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        // Fixed-point copies of the same operands for the i8 rows.
        let mut qa = vec![0i8; m * k];
        let mut qb = vec![0i8; k * n];
        quantize_i8(a.as_slice(), quant_scale(max_abs(a.as_slice())), &mut qa);
        quantize_i8(b.as_slice(), quant_scale(max_abs(b.as_slice())), &mut qb);
        let baseline =
            BASELINE_NS.iter().find(|(bn, _)| *bn == name).map(|&(_, ns)| ns);
        for &t in THREADS {
            if t > cores {
                continue; // the row would duplicate t1 (plan_parts caps at cores)
            }
            set_num_threads(t);
            let ns = time_matmul(&a, &b, quick);
            let flops = 2.0 * m as f64 * k as f64 * n as f64;
            let gflops = flops / ns.max(1) as f64;
            let snap = counted_pass(&a, &b);
            let gemm_calls = snap
                .counter("tensor.gemm_nn", &format!("{m}x{k}x{n}"))
                .map_or(0, |c| c.calls);
            let bytes_per_iter =
                snap.counter("tensor.bytes", "gemm_nn").map_or(0, |c| c.total / COUNT_ITERS);
            let pool_jobs = snap.counter("pool.jobs", "").map_or(0, |c| c.calls);
            // Dispatch-latency percentiles from the span auto-feed
            // histogram of the same counted pass.
            let (p50_ns, p90_ns, p99_ns) =
                snap.hist("tensor.gemm_nn", "").map_or((0, 0, 0), |h| (h.p50, h.p90, h.p99));
            last_snap = snap;
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"shape\": \"{name}\", \"precision\": \"f32\", \
                 \"isa\": \"{kernel}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \
                 \"threads\": {t}, \"ns_per_iter\": {ns}, \"gflops\": {gflops:.2}, \
                 \"gemm_calls\": {gemm_calls}, \"bytes_per_iter\": {bytes_per_iter}, \
                 \"pool_jobs\": {pool_jobs}, \"p50_ns\": {p50_ns}, \"p90_ns\": {p90_ns}, \
                 \"p99_ns\": {p99_ns}",
                kernel = gemm_kernel_name()
            );
            // The baseline is single-threaded; compare only t1 rows.
            if let (Some(base), 1) = (baseline, t) {
                let speedup = base as f64 / ns.max(1) as f64;
                let _ = write!(
                    rows,
                    ", \"baseline_ns_per_iter\": {base}, \"speedup_vs_baseline\": {speedup:.2}"
                );
            }
            rows.push('}');
            // Paired i8 row: same shape and thread count, fixed-point
            // kernel, timed interleaved with f32 so the ratio is
            // drift-free.
            let (ns_i8, speedup_vs_f32) = time_matmul_i8_vs_f32(&a, &b, &qa, &qb, quick);
            let gops_i8 = flops / ns_i8.max(1) as f64;
            let _ = write!(
                rows,
                ",\n    {{\"shape\": \"{name}\", \"precision\": \"i8\", \
                 \"isa\": \"{kernel}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \
                 \"threads\": {t}, \"ns_per_iter\": {ns_i8}, \"gflops\": {gops_i8:.2}, \
                 \"speedup_vs_f32\": {speedup_vs_f32:.2}}}",
                kernel = gemm_kernel_name()
            );
            // One cross-ISA row per detected kernel, each timed
            // interleaved with the portable kernel so the speedups are
            // drift-free and comparable across rows of this run.
            for kernel in gemm_kernels_supported() {
                let (kns, sns, sp) = time_kernel_vs_scalar(&a, &b, kernel, quick);
                let kgf = flops / kns.max(1) as f64;
                let _ = write!(
                    rows,
                    ",\n    {{\"shape\": \"{name}\", \"precision\": \"f32\", \
                     \"kind\": \"kernel\", \"isa\": \"{kernel}\", \
                     \"m\": {m}, \"k\": {k}, \"n\": {n}, \"threads\": {t}, \
                     \"ns_per_iter\": {kns}, \"gflops\": {kgf:.2}, \
                     \"scalar_ns_per_iter\": {sns}, \"speedup_vs_scalar\": {sp:.2}}}"
                );
            }
        }
    }

    // ---- Dispatched SIMD ops at the paper's activation shapes. ------
    // conv1 activation of the mini-AlexNet at batch 8: (8, 16, 36, 36).
    let sel = Isa::select();
    let n_act: usize = 8 * 16 * 36 * 36;
    let act: Vec<f32> = (0..n_act).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let inv_scale = 1.0 / quant_scale(max_abs(&act));
    let g = PoolGeometry::new(16, 36, 36, 2, 2).unwrap();
    let planes = 8 * 16;
    let out_len = planes * g.out_h * g.out_w;
    // Classifier-head logits: the narrow gather path (CIFAR k=10) and
    // a wide row (k=24) exercising the row-at-a-time path.
    let softmax_shapes: [(usize, usize); 2] = [(4096, 10), (2048, 24)];
    for &t in THREADS {
        if t > cores {
            continue;
        }
        set_num_threads(t);

        // relu: train-mode forward (clamp + bit-packed keep mask).
        {
            let mut buf_s = act.clone();
            let mut mask_s = vec![0u8; n_act.div_ceil(8)];
            let mut buf_v = act.clone();
            let mut mask_v = vec![0u8; n_act.div_ceil(8)];
            let bytes = ReluTrain { buf: &mut buf_s, mask: &mut mask_s }.bytes();
            let (ns, sns, sp) = time_simd_pair(
                quick,
                &mut || {
                    dispatch_on(
                        Isa::Scalar,
                        ReluTrain { buf: &mut buf_s, mask: &mut mask_s },
                    )
                },
                &mut || dispatch_on(sel, ReluTrain { buf: &mut buf_v, mask: &mut mask_v }),
            );
            push_op_row(&mut rows, "relu", sel.name(), n_act, t, bytes, ns, sns, sp, "");
        }

        // maxpool: 2x2 stride-2 forward with argmax.
        {
            let mut out_s = vec![0f32; out_len];
            let mut arg_s = vec![0usize; out_len];
            let mut out_v = vec![0f32; out_len];
            let mut arg_v = vec![0usize; out_len];
            let bytes =
                MaxPool2d { x: &act, g, planes, out: &mut out_s, argmax: &mut arg_s }.bytes();
            let (ns, sns, sp) = time_simd_pair(
                quick,
                &mut || {
                    dispatch_on(
                        Isa::Scalar,
                        MaxPool2d { x: &act, g, planes, out: &mut out_s, argmax: &mut arg_s },
                    )
                },
                &mut || {
                    dispatch_on(
                        sel,
                        MaxPool2d { x: &act, g, planes, out: &mut out_v, argmax: &mut arg_v },
                    )
                },
            );
            push_op_row(&mut rows, "maxpool", sel.name(), n_act, t, bytes, ns, sns, sp, "");
        }

        // softmax: three-pass shift-invariant rows.
        for &(b, k) in &softmax_shapes {
            let n_sm = b * k;
            let logits: Vec<f32> = (0..n_sm).map(|_| rng.uniform(-12.0, 12.0)).collect();
            let mut buf_s = logits.clone();
            let mut buf_v = logits;
            let bytes = SoftmaxRows { buf: &mut buf_s, k }.bytes();
            let (ns, sns, sp) = time_simd_pair(
                quick,
                &mut || dispatch_on(Isa::Scalar, SoftmaxRows { buf: &mut buf_s, k }),
                &mut || dispatch_on(sel, SoftmaxRows { buf: &mut buf_v, k }),
            );
            push_op_row(&mut rows, "softmax", sel.name(), n_sm, t, bytes, ns, sns, sp, &format!(", \"k\": {k}"));
        }

        // quantize_i8: f32 -> i8 at the calibration scale.
        {
            let mut dst_s = vec![0i8; n_act];
            let mut dst_v = vec![0i8; n_act];
            let bytes = QuantizeI8 { src: &act, inv_scale, dst: &mut dst_s }.bytes();
            let (ns, sns, sp) = time_simd_pair(
                quick,
                &mut || {
                    dispatch_on(Isa::Scalar, QuantizeI8 { src: &act, inv_scale, dst: &mut dst_s })
                },
                &mut || dispatch_on(sel, QuantizeI8 { src: &act, inv_scale, dst: &mut dst_v }),
            );
            push_op_row(&mut rows, "quantize_i8", sel.name(), n_act, t, bytes, ns, sns, sp, "");
        }
    }
    set_num_threads(1);
    if want_trace {
        // Smoke for the exporter pipeline: the last counted pass as a
        // Chrome trace on stderr (stdout stays pure snapshot JSON).
        eprintln!("{}", last_snap.chrome_trace_json());
    }
    // Plain write, not println!: a downstream `head` closing the pipe
    // early is not worth a panic.
    use std::io::Write as _;
    let isas: Vec<String> =
        Isa::supported().iter().map(|i| format!("\"{}\"", i.name())).collect();
    let kernels: Vec<String> =
        gemm_kernels_supported().iter().map(|k| format!("\"{k}\"")).collect();
    let _ = writeln!(
        std::io::stdout(),
        "{{\n  \"bench\": \"packed_gemm\",\n  \"host_cores\": {cores},\n  \
         \"kernel\": \"{}\",\n  \"simd_isa\": \"{}\",\n  \
         \"isas_supported\": [{}],\n  \"gemm_kernels\": [{}],\n  \"quick\": {quick},\n  \
         \"results\": [\n{rows}\n  ]\n}}",
        gemm_kernel_name(),
        simd_isa_name(),
        isas.join(", "),
        kernels.join(", ")
    );
}
