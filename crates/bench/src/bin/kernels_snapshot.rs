//! Emits a machine-readable timing snapshot of the parallel GEMM
//! kernels as JSON on stdout: one record per (shape, thread-count)
//! pair, in nanoseconds per iteration.
//!
//! ```text
//! cargo run --release -p insitu-bench --bin kernels_snapshot > BENCH_kernels.json
//! ```
//!
//! Criterion's reports are for humans; this snapshot is for diffing
//! across commits. The host core count is recorded because the thread
//! sweep is only meaningful relative to it — on a single-core host the
//! t2/t4 rows measure pool overhead, not speedup.

use insitu_tensor::{matmul, set_num_threads, Rng, Tensor};
use std::fmt::Write as _;
use std::time::Instant;

/// im2col GEMM shapes of the reproduction's networks (per-sample
/// position count × batch 8), plus one square control.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("alex_conv2_b8", 24, 144, 324 * 8),
    ("alex_conv3_b8", 32, 216, 81 * 8),
    ("jigsaw_conv2_b8", 24, 144, 16 * 8),
    ("square_128", 128, 128, 128),
];

const THREADS: &[usize] = &[1, 2, 4];

/// Median-of-reps wall time per call, in nanoseconds.
fn time_matmul(a: &Tensor, b: &Tensor) -> u128 {
    // Warm-up: touches the buffers and spins up any pool workers.
    for _ in 0..3 {
        std::hint::black_box(matmul(a, b).unwrap());
    }
    let mut reps: Vec<u128> = (0..7)
        .map(|_| {
            let iters = 10u32;
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(matmul(a, b).unwrap());
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    reps.sort_unstable();
    reps[reps.len() / 2]
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rng = Rng::seed_from(7);
    let mut rows = String::new();
    for &(name, m, k, n) in SHAPES {
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        for &t in THREADS {
            set_num_threads(t);
            let ns = time_matmul(&a, &b);
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"shape\": \"{name}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \
                 \"threads\": {t}, \"ns_per_iter\": {ns}}}"
            );
        }
    }
    set_num_threads(1);
    // Plain write, not println!: a downstream `head` closing the pipe
    // early is not worth a panic.
    use std::io::Write as _;
    let _ = writeln!(
        std::io::stdout(),
        "{{\n  \"bench\": \"parallel_gemm\",\n  \"host_cores\": {cores},\n  \"results\": [\n{rows}\n  ]\n}}"
    );
}
