//! Emits a machine-readable timing snapshot of the packed GEMM
//! kernels as JSON on stdout: one record per (shape, thread-count)
//! pair, in nanoseconds per iteration.
//!
//! ```text
//! cargo run --release -p insitu-bench --bin kernels_snapshot > BENCH_kernels.json
//! ```
//!
//! Criterion's reports are for humans; this snapshot is for diffing
//! across commits. The host core count is recorded, and the thread
//! sweep skips counts above it — on a single-core host a t2/t4 row
//! would measure pool overhead, not speedup (and `plan_parts` caps
//! kernel splits at the host cores anyway, so such rows would just
//! duplicate t1).
//!
//! Each row carries `gflops` (2·M·K·N per iteration over the measured
//! wall time) and, for the shapes with an embedded pre-packing
//! baseline, `baseline_ns_per_iter` + `speedup_vs_baseline` — the
//! before/after record of the packed-kernel rewrite. Every f32 row is
//! paired with a `"precision": "i8"` row timing the fixed-point GEMM
//! on the same shape; i8 rows carry `speedup_vs_f32` measured against
//! the f32 packed time at the same thread count *in this run*, so the
//! ratio is host-noise-free. Rows also carry
//! telemetry counter totals (GEMM calls, bytes per iteration, pool
//! jobs) from a separate *counted* pass — the timed loop always runs
//! with telemetry disabled, so the ns/iter numbers stay comparable to
//! earlier snapshots. With `INSITU_TRACE=1` the final counted pass's
//! Chrome trace is written to stderr.
//!
//! `--quick` runs a shortened sweep (fewer timing reps) for CI smoke:
//! same fields, noisier numbers.

use insitu_telemetry as telemetry;
use insitu_tensor::{
    gemm_kernel_name, matmul, matmul_i8, max_abs, quant_scale, quantize_i8, set_num_threads, Rng,
    Tensor,
};
use std::fmt::Write as _;
use std::time::Instant;

/// im2col GEMM shapes of the reproduction's networks (per-sample
/// position count × batch 8), plus one square control.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("alex_conv2_b8", 24, 144, 324 * 8),
    ("alex_conv3_b8", 32, 216, 81 * 8),
    ("jigsaw_conv2_b8", 24, 144, 16 * 8),
    ("square_128", 128, 128, 128),
];

/// Single-thread ns/iter of the pre-packing cache-blocked kernel on
/// the reference host (commit 7dce89d), kept as the fixed "before" the
/// `speedup_vs_baseline` field is measured against.
const BASELINE_NS: &[(&str, u128)] = &[
    ("alex_conv2_b8", 1_812_097),
    ("alex_conv3_b8", 855_665),
    ("jigsaw_conv2_b8", 89_263),
    ("square_128", 404_629),
];

const THREADS: &[usize] = &[1, 2, 4];

/// Median-of-reps wall time per call, in nanoseconds.
fn time_matmul(a: &Tensor, b: &Tensor, quick: bool) -> u128 {
    // Warm-up: touches the buffers, grows the packing scratch to its
    // steady-state size and spins up any pool workers.
    for _ in 0..3 {
        std::hint::black_box(matmul(a, b).unwrap());
    }
    let (reps, iters) = if quick { (3, 3u32) } else { (7, 10u32) };
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(matmul(a, b).unwrap());
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times the i8 GEMM interleaved with the f32 GEMM on the same
/// operands: each rep measures both back to back, so `speedup_vs_f32`
/// is a median of per-rep ratios and clock drift between the two
/// measurements cancels out. Returns (i8 ns/iter, speedup vs f32).
fn time_matmul_i8_vs_f32(
    a: &Tensor,
    b: &Tensor,
    qa: &[i8],
    qb: &[i8],
    quick: bool,
) -> (u128, f64) {
    let (m, k, n) = (a.dims()[0], a.dims()[1], b.dims()[1]);
    for _ in 0..3 {
        std::hint::black_box(matmul(a, b).unwrap());
        std::hint::black_box(matmul_i8(qa, qb, m, k, n).unwrap());
    }
    let (reps, iters) = if quick { (3, 3u32) } else { (7, 10u32) };
    let mut i8_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(matmul(a, b).unwrap());
        }
        let f32_sample = start.elapsed().as_nanos() / u128::from(iters);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(matmul_i8(qa, qb, m, k, n).unwrap());
        }
        let i8_sample = start.elapsed().as_nanos() / u128::from(iters);
        i8_ns.push(i8_sample);
        ratios.push(f32_sample.max(1) as f64 / i8_sample.max(1) as f64);
    }
    i8_ns.sort_unstable();
    ratios.sort_by(f64::total_cmp);
    (i8_ns[i8_ns.len() / 2], ratios[ratios.len() / 2])
}

/// Iterations of the separately-counted (telemetry-enabled) pass.
const COUNT_ITERS: u64 = 10;

/// Runs a telemetry-enabled pass over the same GEMM and returns its
/// snapshot. Kept apart from [`time_matmul`] so tracing overhead never
/// touches the timed numbers.
fn counted_pass(a: &Tensor, b: &Tensor) -> telemetry::TelemetrySnapshot {
    telemetry::set_enabled(true);
    telemetry::reset();
    for _ in 0..COUNT_ITERS {
        std::hint::black_box(matmul(a, b).unwrap());
    }
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);
    telemetry::reset();
    snap
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let want_trace = telemetry::init_from_env();
    telemetry::set_enabled(false); // the counted passes open their own windows
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rng = Rng::seed_from(7);
    let mut rows = String::new();
    let mut last_snap = telemetry::TelemetrySnapshot::default();
    for &(name, m, k, n) in SHAPES {
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        // Fixed-point copies of the same operands for the i8 rows.
        let mut qa = vec![0i8; m * k];
        let mut qb = vec![0i8; k * n];
        quantize_i8(a.as_slice(), quant_scale(max_abs(a.as_slice())), &mut qa);
        quantize_i8(b.as_slice(), quant_scale(max_abs(b.as_slice())), &mut qb);
        let baseline =
            BASELINE_NS.iter().find(|(bn, _)| *bn == name).map(|&(_, ns)| ns);
        for &t in THREADS {
            if t > cores {
                continue; // the row would duplicate t1 (plan_parts caps at cores)
            }
            set_num_threads(t);
            let ns = time_matmul(&a, &b, quick);
            let flops = 2.0 * m as f64 * k as f64 * n as f64;
            let gflops = flops / ns.max(1) as f64;
            let snap = counted_pass(&a, &b);
            let gemm_calls = snap
                .counter("tensor.gemm_nn", &format!("{m}x{k}x{n}"))
                .map_or(0, |c| c.calls);
            let bytes_per_iter =
                snap.counter("tensor.bytes", "gemm_nn").map_or(0, |c| c.total / COUNT_ITERS);
            let pool_jobs = snap.counter("pool.jobs", "").map_or(0, |c| c.calls);
            last_snap = snap;
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"shape\": \"{name}\", \"precision\": \"f32\", \
                 \"m\": {m}, \"k\": {k}, \"n\": {n}, \
                 \"threads\": {t}, \"ns_per_iter\": {ns}, \"gflops\": {gflops:.2}, \
                 \"gemm_calls\": {gemm_calls}, \"bytes_per_iter\": {bytes_per_iter}, \
                 \"pool_jobs\": {pool_jobs}"
            );
            // The baseline is single-threaded; compare only t1 rows.
            if let (Some(base), 1) = (baseline, t) {
                let speedup = base as f64 / ns.max(1) as f64;
                let _ = write!(
                    rows,
                    ", \"baseline_ns_per_iter\": {base}, \"speedup_vs_baseline\": {speedup:.2}"
                );
            }
            rows.push('}');
            // Paired i8 row: same shape and thread count, fixed-point
            // kernel, timed interleaved with f32 so the ratio is
            // drift-free.
            let (ns_i8, speedup_vs_f32) = time_matmul_i8_vs_f32(&a, &b, &qa, &qb, quick);
            let gops_i8 = flops / ns_i8.max(1) as f64;
            let _ = write!(
                rows,
                ",\n    {{\"shape\": \"{name}\", \"precision\": \"i8\", \
                 \"m\": {m}, \"k\": {k}, \"n\": {n}, \
                 \"threads\": {t}, \"ns_per_iter\": {ns_i8}, \"gflops\": {gops_i8:.2}, \
                 \"speedup_vs_f32\": {speedup_vs_f32:.2}}}"
            );
        }
    }
    set_num_threads(1);
    if want_trace {
        // Smoke for the exporter pipeline: the last counted pass as a
        // Chrome trace on stderr (stdout stays pure snapshot JSON).
        eprintln!("{}", last_snap.chrome_trace_json());
    }
    // Plain write, not println!: a downstream `head` closing the pipe
    // early is not worth a panic.
    use std::io::Write as _;
    let _ = writeln!(
        std::io::stdout(),
        "{{\n  \"bench\": \"packed_gemm\",\n  \"host_cores\": {cores},\n  \
         \"kernel\": \"{}\",\n  \"quick\": {quick},\n  \"results\": [\n{rows}\n  ]\n}}",
        gemm_kernel_name()
    );
}
