//! Emits a machine-readable timing snapshot of the co-running stage
//! pipeline as JSON on stdout: one record per diagnosis policy,
//! comparing the fused fast path (per-stage logit cache +
//! tile-embedding reuse) against the unfused reference that recomputes
//! every forward.
//!
//! ```text
//! cargo run --release -p insitu-bench --bin node_snapshot > BENCH_node.json
//! ```
//!
//! Paper shapes: Mini-AlexNet inference over 36×36×3 images, the
//! 24-permutation jigsaw diagnosis network sharing conv1–conv3, one
//! acquisition stage of 32 images at batch 8. Timed loops run with
//! telemetry disabled; a separate counted pass per pipeline records
//! `jigsaw.trunk_passes`, the direct witness of the reuse (fused:
//! one per image; unfused under `JigsawProbe{3}`: three per image),
//! plus the stage latency histograms (`stage_p50/p90/p99_ns`,
//! `per_image_p50/p99_ns` per row). The header carries the GEMM
//! kernel and SIMD ISA in force and the counted pass's telemetry
//! totals; a `replan` record re-runs the planner on the measured
//! profile, and the counted passes' metrics hub must export valid
//! Prometheus text (dumped on stderr under `INSITU_METRICS=1`) or the
//! process exits non-zero.
//!
//! Before any timing, both pipelines are run once from the same seed
//! and their outcomes compared bit-for-bit; a divergence makes the
//! process exit non-zero, so CI smoke-running this binary doubles as
//! an end-to-end equivalence check.
//!
//! A final `precision_compare` record times the same fused stage at
//! `InferencePrecision::I8` against f32 on one node pair
//! (interleaved reps, so the ratio is host-drift-free) and reports the
//! held-out accuracy delta in points — the measured numbers behind the
//! planner's `QuantProfile`.
//!
//! An `update_cache` record compares the Cloud's incremental update
//! cycle with and without the frozen-prefix activation cache:
//! interleaved cycles over the same upload schedule, per-cycle
//! `ModelUpdate`s compared bit-for-bit (divergence exits non-zero),
//! warm-cycle ns plus hit rate and resident cache bytes reported.
//!
//! An `ingest_overlap` record compares the sequential
//! materialize-then-compute session with the producer-driven
//! overlapped pipeline over the same synthetic drift stream, gated on
//! the Block-policy differential oracle (lockstep trajectories and
//! final weights bit-for-bit equal, or the process exits non-zero),
//! and reports the ingest queue-depth percentiles and the frame
//! arena's allocation discipline.
//!
//! `--quick` shortens the timing sweep for CI smoke: same fields,
//! noisier numbers.

use insitu_cloud::{Cloud, IncrementalConfig, Pretrained};
use insitu_core::{
    diagnose, diagnose_with_logits, plan_with_measurements, run_ingested_session,
    run_streaming_session_with, validate_prometheus, Availability, CloudEndpoint, DiagnosisPolicy,
    InferencePrecision, IngestPolicy, IngestSessionConfig, InsituNode, MeasuredProfile, MetricsHub,
    ModelUpdate, PlanRequest, SessionConfig, StageOutcome,
};
use insitu_data::{Condition, Dataset, DriftSchedule, PermutationSet, SyntheticDriftSource};
use insitu_devices::NetworkShapes;
use insitu_nn::models::{jigsaw_network, mini_alexnet};
use insitu_nn::serialize::state_dict;
use insitu_nn::transfer::transfer_and_freeze;
use insitu_nn::{JigsawNet, Sequential};
use insitu_telemetry as telemetry;
use insitu_tensor::{gemm_kernel_name, Rng, Tensor};
use insitu_tensor::simd::simd_isa_name;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const IMAGES: usize = 32;
const BATCH: usize = 8;
const CLASSES: usize = 8;
const PERMS: usize = 24;
const SEED: u64 = 1337;

const POLICIES: &[(&str, DiagnosisPolicy)] = &[
    ("jigsaw_probe_3", DiagnosisPolicy::JigsawProbe { probes: 3 }),
    ("jigsaw_confidence", DiagnosisPolicy::JigsawConfidence { threshold: 0.5 }),
    ("inference_confidence", DiagnosisPolicy::InferenceConfidence { threshold: 0.5 }),
    ("oracle", DiagnosisPolicy::Oracle),
];

/// The deployed pair plus the permutation set, freshly seeded.
fn make_parts() -> (Sequential, JigsawNet, PermutationSet) {
    let mut rng = Rng::seed_from(SEED);
    let jigsaw = jigsaw_network(PERMS, &mut rng).expect("jigsaw net");
    let mut inference = mini_alexnet(CLASSES, &mut rng).expect("inference net");
    transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).expect("transfer");
    let set = PermutationSet::generate(PERMS, &mut rng).expect("perm set");
    (inference, jigsaw, set)
}

fn make_node(policy: DiagnosisPolicy) -> InsituNode {
    let (inference, jigsaw, set) = make_parts();
    let mut node =
        InsituNode::new(inference, jigsaw, set, policy, 3, SEED ^ 0x5A).expect("node");
    node.prewarm(BATCH).expect("prewarm");
    node
}

fn stage_data() -> Dataset {
    Dataset::generate(IMAGES, CLASSES, &Condition::in_situ(), &mut Rng::seed_from(SEED + 1))
        .expect("stage data")
}

/// (predictions, verdict bits, upload selection, uploaded bytes).
type OutcomeBits = (Vec<usize>, Vec<(bool, u32)>, Vec<usize>, u64);

fn outcome_bits(o: &StageOutcome) -> OutcomeBits {
    (
        o.predictions.clone(),
        o.verdicts.iter().map(|v| (v.valuable, v.score.to_bits())).collect(),
        o.valuable.clone(),
        o.uploaded_bytes,
    )
}

/// Median-of-reps wall time of one full stage, in nanoseconds.
fn time_stage(
    node: &mut InsituNode,
    data: &Dataset,
    quick: bool,
    run: impl Fn(&mut InsituNode, &Dataset) -> StageOutcome,
) -> u128 {
    // Warm-up beyond prewarm: settle the branch predictors and any
    // first-touch page faults in the freshly grown workspaces.
    std::hint::black_box(run(node, data));
    let reps = if quick { 3 } else { 9 };
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(run(node, data));
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median-of-reps wall time of the diagnosis layer alone (the part the
/// reuse layer accelerates; the stage numbers fold in the inference
/// forward both pipelines pay identically), in nanoseconds.
fn time_diagnosis(data: &Dataset, policy: DiagnosisPolicy, quick: bool, fused: bool) -> u128 {
    let (mut inference, mut jigsaw, set) = make_parts();
    // Warm the workspaces the same way the node does, then precompute
    // the logit cache the fused path would receive from the stage.
    inference
        .predict(&Tensor::zeros([BATCH, 3, 36, 36]))
        .expect("inference prewarm");
    let mut logit_chunks = Vec::new();
    let mut start = 0;
    while start < data.len() {
        let end = (start + BATCH).min(data.len());
        let sub = data.subset_range(start..end).expect("chunk");
        logit_chunks.push(inference.predict(sub.images()).expect("logits"));
        start = end;
    }
    let mut rng = Rng::seed_from(SEED ^ 0x5A);
    let mut run = |rng: &mut Rng| {
        if fused {
            diagnose_with_logits(policy, &logit_chunks, &mut jigsaw, &set, data, rng)
        } else {
            diagnose(policy, &mut inference, &mut jigsaw, &set, data, BATCH, rng)
        }
        .expect("diagnosis")
    };
    std::hint::black_box(run(&mut rng));
    let reps = if quick { 3 } else { 9 };
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(run(&mut rng));
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times the fused stage at i8 against f32 on two identically seeded
/// nodes, interleaving the reps so clock drift cancels out of the
/// ratio. Returns (f32 ns, i8 ns, median per-rep speedup).
fn time_stage_i8_vs_f32(
    f32_node: &mut InsituNode,
    i8_node: &mut InsituNode,
    data: &Dataset,
    quick: bool,
) -> (u128, u128, f64) {
    let run = |n: &mut InsituNode| std::hint::black_box(n.process_stage(data, BATCH).expect("stage"));
    run(f32_node);
    run(i8_node);
    let reps = if quick { 3 } else { 9 };
    let mut f32_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut i8_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        run(f32_node);
        let f = t0.elapsed().as_nanos();
        let t0 = Instant::now();
        run(i8_node);
        let q = t0.elapsed().as_nanos();
        f32_ns.push(f);
        i8_ns.push(q);
        ratios.push(f.max(1) as f64 / q.max(1) as f64);
    }
    f32_ns.sort_unstable();
    i8_ns.sort_unstable();
    ratios.sort_by(f64::total_cmp);
    (f32_ns[reps / 2], i8_ns[reps / 2], ratios[reps / 2])
}

/// Interleaves cached and uncached Cloud update cycles on the paper
/// shapes: two identically seeded Clouds (conv1–3 frozen, the
/// deployment recipe) consume the identical upload schedule; one
/// serves fine-tunes through the frozen-prefix activation cache, the
/// other recomputes the prefix every epoch. Every cycle's
/// `ModelUpdate` pair is compared bit-for-bit (the cache's contract),
/// and the warm cycles — where the retained archive produces hits —
/// are timed pairwise. Returns the JSON record plus the equivalence
/// verdict.
fn update_cache_row(quick: bool) -> (String, bool) {
    const UPLOAD: usize = 16;
    const EPOCHS: usize = 2;
    let cycles: usize = if quick { 3 } else { 5 };
    let make_cloud = || {
        let (inference, jigsaw, set) = make_parts();
        let pre = Pretrained { jigsaw, set, task_accuracy: 0.0, ops: 0 };
        let cfg = IncrementalConfig {
            epochs: EPOCHS,
            batch_size: BATCH,
            lr: 0.01,
            threads: None,
            holdout: None,
        };
        Cloud::new(inference, pre, cfg, SEED ^ 0x33)
    };
    let mut cached = make_cloud();
    let mut uncached = make_cloud().without_activation_cache();
    let uploads: Vec<Dataset> = {
        let mut rng = Rng::seed_from(SEED + 4);
        (0..cycles)
            .map(|_| {
                Dataset::generate(UPLOAD, CLASSES, &Condition::in_situ(), &mut rng)
                    .expect("upload data")
            })
            .collect()
    };
    let mut identical = true;
    let (mut cached_warm_ns, mut uncached_warm_ns) = (0u128, 0u128);
    for (cycle, upload) in uploads.iter().enumerate() {
        let t0 = Instant::now();
        let ua = cached.incremental_update(upload).expect("cached update");
        let cached_ns = t0.elapsed().as_nanos();
        let t0 = Instant::now();
        let ub = uncached.incremental_update(upload).expect("uncached update");
        let uncached_ns = t0.elapsed().as_nanos();
        identical &= ua == ub;
        // Cycle 0 is cold for both sides; the archive-reuse cycles are
        // where the cache pays off.
        if cycle > 0 {
            cached_warm_ns += cached_ns;
            uncached_warm_ns += uncached_ns;
        }
    }
    let stats = cached.cache_stats().expect("cache enabled");
    let warm = cycles.saturating_sub(1).max(1) as u128;
    let speedup = uncached_warm_ns as f64 / cached_warm_ns.max(1) as f64;
    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"cycles\": {cycles}, \"upload_per_cycle\": {UPLOAD}, \"epochs\": {EPOCHS}, \
         \"archive_len\": {}, \"cached_ns_per_cycle\": {}, \"uncached_ns_per_cycle\": {}, \
         \"speedup\": {speedup:.2}, \"hit_rate\": {:.4}, \"cache_bytes\": {}, \
         \"cache_entries\": {}, \"evictions\": {}, \"identical\": {identical}}}",
        cached.archive_len(),
        cached_warm_ns / warm,
        uncached_warm_ns / warm,
        stats.hit_rate(),
        stats.resident_bytes,
        stats.entries,
        stats.evictions
    );
    (row, identical)
}

/// A trivially fast Cloud double for the ingestion sessions: echoes
/// back the same weights, so two sessions fed identical uploads in
/// identical order install identical updates.
#[derive(Debug)]
struct EchoCloud {
    params: Vec<Tensor>,
    version: u32,
}

impl CloudEndpoint for EchoCloud {
    fn incremental_update(&mut self, _uploaded: &Dataset) -> insitu_core::Result<ModelUpdate> {
        self.version += 1;
        Ok(ModelUpdate {
            version: self.version,
            inference_params: self.params.clone(),
            jigsaw_params: None,
            training_ops: 0,
            eval_accuracy: None,
        })
    }
}

/// The overlapped-ingestion record: sequential (materialize the whole
/// synthetic stream, then run the vec-driven session) against the
/// producer pipeline generating frame *N+1* while the node computes
/// stage *N*, interleaved reps. Gated on the differential oracle — the
/// overlapped `Block` session with lockstep uploads must reproduce the
/// sequential session's `SessionStats` and final weights bit for bit —
/// and reports the counted pass's queue-depth percentiles plus the
/// arena's allocation discipline (`fresh_buffers` stays bounded by the
/// queue capacity, never the stream length). Returns the JSON record
/// plus the equivalence verdict.
fn ingest_overlap_row(quick: bool) -> (String, bool) {
    let frames = if quick { 4 } else { 8 };
    const QUEUE_CAP: usize = 4;
    let policy = DiagnosisPolicy::JigsawProbe { probes: 3 };
    let schedule = DriftSchedule { start: 0.2, step: 0.1 };
    let make_source = || {
        SyntheticDriftSource::new(frames, IMAGES, CLASSES, schedule, SEED + 5).expect("source")
    };
    let params = {
        let mut n = make_node(policy);
        state_dict(n.inference_mut())
    };
    let echo = || Arc::new(Mutex::new(EchoCloud { params: params.clone(), version: 0 }));
    // Equivalence gate first: lockstep uploads + the lossless Block
    // policy make the overlapped session's trajectory deterministic;
    // it must match the sequential loop bit for bit.
    let lockstep = SessionConfig { batch_size: BATCH, uplink_capacity: 4, lockstep_uploads: true };
    let identical = {
        let oracle_stream = make_source().materialize().expect("materialize");
        let (mut na, sa) =
            run_streaming_session_with(make_node(policy), echo(), oracle_stream, &lockstep)
                .expect("sequential session");
        let cfg = IngestSessionConfig {
            session: lockstep.clone(),
            queue_capacity: QUEUE_CAP,
            policy: IngestPolicy::Block,
        };
        let (mut nb, sb, _) =
            run_ingested_session(make_node(policy), echo(), Box::new(make_source()), &cfg)
                .expect("overlapped session");
        sa == sb
            && na.version() == nb.version()
            && state_dict(na.inference_mut()) == state_dict(nb.inference_mut())
    };
    // Timed interleaved reps, production-shaped (no lockstep): the
    // sequential side pays materialize-then-compute in series, the
    // overlapped side hides generation behind the stage compute. Node
    // and Cloud construction stay outside the clock.
    let session = SessionConfig { batch_size: BATCH, uplink_capacity: 4, lockstep_uploads: false };
    let cfg = IngestSessionConfig {
        session: session.clone(),
        queue_capacity: QUEUE_CAP,
        policy: IngestPolicy::Block,
    };
    let reps = if quick { 3 } else { 5 };
    let mut seq_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut ovl_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut summary = insitu_core::IngestSummary::default();
    for _ in 0..reps {
        let node = make_node(policy);
        let cloud = echo();
        let t0 = Instant::now();
        let oracle_stream = make_source().materialize().expect("materialize");
        let _ = run_streaming_session_with(node, cloud, oracle_stream, &session)
            .expect("sequential session");
        seq_ns.push(t0.elapsed().as_nanos());
        let node = make_node(policy);
        let cloud = echo();
        let t0 = Instant::now();
        let (_, _, s) = run_ingested_session(node, cloud, Box::new(make_source()), &cfg)
            .expect("overlapped session");
        ovl_ns.push(t0.elapsed().as_nanos());
        summary = s;
    }
    seq_ns.sort_unstable();
    ovl_ns.sort_unstable();
    let sequential_ns = seq_ns[reps / 2];
    let overlapped_ns = ovl_ns[reps / 2];
    let overlap_speedup = sequential_ns as f64 / overlapped_ns.max(1) as f64;
    // Counted pass: one telemetry-enabled overlapped session for the
    // queue-depth distribution the re-plan trigger watches.
    telemetry::set_enabled(true);
    telemetry::advance_epoch();
    let (_, stats, _) = run_ingested_session(make_node(policy), echo(), Box::new(make_source()), &cfg)
        .expect("counted overlapped session");
    telemetry::set_enabled(false);
    telemetry::reset();
    let (depth_p50, depth_p90, _) =
        hist_percentiles(&stats.telemetry, "node.ingest.queue_depth", "");
    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"frames\": {frames}, \"images_per_frame\": {IMAGES}, \"batch\": {BATCH}, \
         \"queue_capacity\": {QUEUE_CAP}, \"sequential_ns\": {sequential_ns}, \
         \"overlapped_ns\": {overlapped_ns}, \"overlap_speedup\": {overlap_speedup:.2}, \
         \"queue_depth_p50\": {depth_p50}, \"queue_depth_p90\": {depth_p90}, \
         \"drops\": {}, \"fresh_buffers\": {}, \"reused_buffers\": {}, \"identical\": {identical}}}",
        summary.drops, summary.fresh_buffers, summary.reused_buffers
    );
    (row, identical)
}

/// Stage repetitions of the telemetry-enabled counted pass — enough
/// for the latency histograms to hold a small population while the
/// counter totals stay exact multiples of one stage.
const COUNTED_REPS: u64 = 3;

/// Runs [`COUNTED_REPS`] telemetry-enabled stages in a fresh epoch and
/// returns the snapshot (kept apart from the timed loops so tracing
/// overhead never touches the ns numbers).
fn counted_stage(
    node: &mut InsituNode,
    data: &Dataset,
    run: impl Fn(&mut InsituNode, &Dataset) -> StageOutcome,
) -> telemetry::TelemetrySnapshot {
    telemetry::set_enabled(true);
    telemetry::advance_epoch();
    for _ in 0..COUNTED_REPS {
        std::hint::black_box(run(node, data));
    }
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);
    telemetry::reset();
    snap
}

/// `jigsaw.trunk_passes` per stage in a counted snapshot.
fn trunk_passes(snap: &telemetry::TelemetrySnapshot) -> u64 {
    snap.counter("jigsaw.trunk_passes", "").map_or(0, |c| c.total) / COUNTED_REPS
}

/// `(p50, p90, p99)` of a histogram in a counted snapshot, in ns.
fn hist_percentiles(snap: &telemetry::TelemetrySnapshot, name: &str, label: &str) -> (u64, u64, u64) {
    snap.hist(name, label).map_or((0, 0, 0), |h| (h.p50, h.p90, h.p99))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    telemetry::set_enabled(false);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = insitu_tensor::num_threads();
    let data = stage_data();
    let fused = |n: &mut InsituNode, d: &Dataset| n.process_stage(d, BATCH).expect("stage");
    let unfused =
        |n: &mut InsituNode, d: &Dataset| n.process_stage_unfused(d, BATCH).expect("stage");
    let mut rows = String::new();
    let mut all_identical = true;
    let mut hub = MetricsHub::new();
    let mut probe_snap = telemetry::TelemetrySnapshot::default();
    for &(name, policy) in POLICIES {
        // Equivalence gate first: same seed, both pipelines, bit-equal
        // outcomes — the reuse layer's contract, checked end to end.
        let identical = {
            let mut a = make_node(policy);
            let mut b = make_node(policy);
            outcome_bits(&fused(&mut a, &data)) == outcome_bits(&unfused(&mut b, &data))
        };
        all_identical &= identical;
        let fused_ns = time_stage(&mut make_node(policy), &data, quick, fused);
        let unfused_ns = time_stage(&mut make_node(policy), &data, quick, unfused);
        let speedup = unfused_ns as f64 / fused_ns.max(1) as f64;
        let diag_fused_ns = time_diagnosis(&data, policy, quick, true);
        let diag_unfused_ns = time_diagnosis(&data, policy, quick, false);
        let diag_speedup = diag_unfused_ns as f64 / diag_fused_ns.max(1) as f64;
        let fused_snap = counted_stage(&mut make_node(policy), &data, fused);
        let unfused_snap = counted_stage(&mut make_node(policy), &data, unfused);
        let passes_fused = trunk_passes(&fused_snap);
        let passes_unfused = trunk_passes(&unfused_snap);
        // Latency histograms from the counted pass: per-stage wall time
        // (span auto-feed) and the per-image samples the re-planner eats.
        let (stage_p50, stage_p90, stage_p99) = hist_percentiles(&fused_snap, "node.stage", "");
        let (img_p50, _, img_p99) = hist_percentiles(&fused_snap, "node.stage_per_image", "f32");
        hub.fold(&fused_snap);
        if name == "jigsaw_probe_3" {
            probe_snap = fused_snap;
        }
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"policy\": \"{name}\", \"images\": {IMAGES}, \"batch\": {BATCH}, \
             \"fused_ns_per_stage\": {fused_ns}, \"unfused_ns_per_stage\": {unfused_ns}, \
             \"speedup\": {speedup:.2}, \"diag_fused_ns\": {diag_fused_ns}, \
             \"diag_unfused_ns\": {diag_unfused_ns}, \"diag_speedup\": {diag_speedup:.2}, \
             \"stage_p50_ns\": {stage_p50}, \"stage_p90_ns\": {stage_p90}, \
             \"stage_p99_ns\": {stage_p99}, \"per_image_p50_ns\": {img_p50}, \
             \"per_image_p99_ns\": {img_p99}, \"trunk_passes_fused\": {passes_fused}, \
             \"trunk_passes_unfused\": {passes_unfused}, \"identical\": {identical}}}"
        );
    }
    // The fixed-point row: same fused stage, i8 inference vs f32, plus
    // the held-out accuracy delta the planner's QuantProfile consumes.
    let precision_row = {
        let calib = Dataset::generate(
            IMAGES,
            CLASSES,
            &Condition::ideal(),
            &mut Rng::seed_from(SEED + 2),
        )
        .expect("calibration data");
        let eval = Dataset::generate(
            2 * IMAGES,
            CLASSES,
            &Condition::ideal(),
            &mut Rng::seed_from(SEED + 3),
        )
        .expect("eval data");
        let policy = DiagnosisPolicy::JigsawProbe { probes: 3 };
        let mut f32_node = make_node(policy);
        let mut i8_node = make_node(policy);
        i8_node.enable_quantized(&calib).expect("calibrate");
        i8_node.prewarm(BATCH).expect("i8 prewarm");
        let acc_f32 = f32_node.accuracy_on(&eval, BATCH).expect("f32 accuracy");
        let acc_i8 = i8_node.accuracy_on(&eval, BATCH).expect("i8 accuracy");
        let delta_points = (acc_i8 - acc_f32) * 100.0;
        let (f32_ns, i8_ns, speedup) =
            time_stage_i8_vs_f32(&mut f32_node, &mut i8_node, &data, quick);
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"policy\": \"jigsaw_probe_3\", \"images\": {IMAGES}, \"batch\": {BATCH}, \
             \"f32_ns_per_stage\": {f32_ns}, \"i8_ns_per_stage\": {i8_ns}, \
             \"speedup\": {speedup:.2}, \"acc_f32\": {acc_f32:.4}, \"acc_i8\": {acc_i8:.4}, \
             \"accuracy_delta_points\": {delta_points:.2}}}"
        );
        row
    };
    // The frozen-prefix activation cache: cached vs uncached update
    // cycles, bitwise-gated like the fused/unfused stage pipelines.
    let (update_cache_record, cache_identical) = update_cache_row(quick);
    all_identical &= cache_identical;
    // The overlapped ingestion pipeline: sequential vs producer-driven
    // wall-clock, gated on the Block-policy differential oracle.
    let (ingest_overlap_record, ingest_identical) = ingest_overlap_row(quick);
    all_identical &= ingest_identical;
    // The closed observability loop, exercised on this host's own
    // measurements: distil the counted probe pass into a
    // MeasuredProfile and let the planner re-admit a batch from the
    // measured p90 instead of the analytical device model.
    let replan_row = {
        let measured = MeasuredProfile::from_snapshot(&probe_snap, InferencePrecision::F32)
            .expect("counted pass must yield per-image samples");
        let request =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 1.0, max_batch: 128 };
        let mut row = String::new();
        match plan_with_measurements(&request, &NetworkShapes::alexnet(), None, &measured) {
            Ok(plan) => {
                let _ = write!(
                    row,
                    "{{\"measured_per_image_p50_s\": {:.6}, \"measured_per_image_p90_s\": {:.6}, \
                     \"uplink_bytes_per_s\": {:.0}, \"admitted_batch\": {}, \
                     \"plan\": \"{}\", \"feasible\": true}}",
                    measured.per_image_p50_s,
                    measured.per_image_p90_s,
                    measured.uplink_bytes_per_s,
                    plan.inference_batch,
                    plan.summary()
                );
            }
            Err(e) => {
                let _ = write!(
                    row,
                    "{{\"measured_per_image_p90_s\": {:.6}, \"feasible\": false, \
                     \"reason\": \"{}\"}}",
                    measured.per_image_p90_s,
                    e.to_string().replace('"', "'")
                );
            }
        }
        row
    };
    // Exporter gate: the hub built from the counted passes must render
    // Prometheus text the checker accepts — this binary doubles as the
    // CI smoke for the export pipeline. `INSITU_METRICS=1` dumps the
    // text on stderr (stdout stays pure snapshot JSON).
    let prometheus = hub.to_prometheus();
    if let Err(e) = validate_prometheus(&prometheus) {
        eprintln!("node_snapshot: invalid Prometheus export: {e}");
        std::process::exit(1);
    }
    if std::env::var_os("INSITU_METRICS").is_some() {
        eprint!("{prometheus}");
    }
    let telemetry_header = {
        let stage_spans: u64 =
            probe_snap.counters.iter().filter(|c| c.name == "node.stage").map(|c| c.calls).sum();
        let stage_ns: u64 =
            probe_snap.counters.iter().filter(|c| c.name == "node.stage").map(|c| c.total).sum();
        format!(
            "{{\"epoch\": {}, \"counted_reps\": {COUNTED_REPS}, \"stage_spans\": {stage_spans}, \
             \"stage_total_ns\": {stage_ns}, \"trunk_passes_per_stage\": {}, \
             \"counter_series\": {}, \"hist_series\": {}, \"dropped_events\": {}}}",
            probe_snap.epoch,
            trunk_passes(&probe_snap),
            probe_snap.counters.len(),
            probe_snap.hists.len(),
            probe_snap.dropped_events
        )
    };
    // Plain write, not println!: a downstream `head` closing the pipe
    // early is not worth a panic.
    use std::io::Write as _;
    let _ = writeln!(
        std::io::stdout(),
        "{{\n  \"bench\": \"node_stage\",\n  \"host_cores\": {cores},\n  \
         \"kernel_threads\": {threads},\n  \"kernel\": \"{}\",\n  \"simd_isa\": \"{}\",\n  \
         \"quick\": {quick},\n  \"telemetry\": {telemetry_header},\n  \"results\": [\n{rows}\n  ],\n  \
         \"precision_compare\": {precision_row},\n  \"update_cache\": {update_cache_record},\n  \
         \"ingest_overlap\": {ingest_overlap_record},\n  \"replan\": {replan_row}\n}}",
        gemm_kernel_name(),
        simd_isa_name()
    );
    if !all_identical {
        eprintln!(
            "node_snapshot: an optimized pipeline diverged from its reference \
             (fused stage or cached update cycle)"
        );
        std::process::exit(1);
    }
}
