//! Emits a machine-readable timing snapshot of the co-running stage
//! pipeline as JSON on stdout: one record per diagnosis policy,
//! comparing the fused fast path (per-stage logit cache +
//! tile-embedding reuse) against the unfused reference that recomputes
//! every forward.
//!
//! ```text
//! cargo run --release -p insitu-bench --bin node_snapshot > BENCH_node.json
//! ```
//!
//! Paper shapes: Mini-AlexNet inference over 36×36×3 images, the
//! 24-permutation jigsaw diagnosis network sharing conv1–conv3, one
//! acquisition stage of 32 images at batch 8. Timed loops run with
//! telemetry disabled; a separate counted pass per pipeline records
//! `jigsaw.trunk_passes`, the direct witness of the reuse (fused:
//! one per image; unfused under `JigsawProbe{3}`: three per image).
//!
//! Before any timing, both pipelines are run once from the same seed
//! and their outcomes compared bit-for-bit; a divergence makes the
//! process exit non-zero, so CI smoke-running this binary doubles as
//! an end-to-end equivalence check.
//!
//! A final `precision_compare` record times the same fused stage at
//! `InferencePrecision::I8` against f32 on one node pair
//! (interleaved reps, so the ratio is host-drift-free) and reports the
//! held-out accuracy delta in points — the measured numbers behind the
//! planner's `QuantProfile`.
//!
//! `--quick` shortens the timing sweep for CI smoke: same fields,
//! noisier numbers.

use insitu_core::{diagnose, diagnose_with_logits, DiagnosisPolicy, InsituNode, StageOutcome};
use insitu_data::{Condition, Dataset, PermutationSet};
use insitu_nn::models::{jigsaw_network, mini_alexnet};
use insitu_nn::transfer::transfer_and_freeze;
use insitu_nn::{JigsawNet, Sequential};
use insitu_telemetry as telemetry;
use insitu_tensor::{Rng, Tensor};
use std::fmt::Write as _;
use std::time::Instant;

const IMAGES: usize = 32;
const BATCH: usize = 8;
const CLASSES: usize = 8;
const PERMS: usize = 24;
const SEED: u64 = 1337;

const POLICIES: &[(&str, DiagnosisPolicy)] = &[
    ("jigsaw_probe_3", DiagnosisPolicy::JigsawProbe { probes: 3 }),
    ("jigsaw_confidence", DiagnosisPolicy::JigsawConfidence { threshold: 0.5 }),
    ("inference_confidence", DiagnosisPolicy::InferenceConfidence { threshold: 0.5 }),
    ("oracle", DiagnosisPolicy::Oracle),
];

/// The deployed pair plus the permutation set, freshly seeded.
fn make_parts() -> (Sequential, JigsawNet, PermutationSet) {
    let mut rng = Rng::seed_from(SEED);
    let jigsaw = jigsaw_network(PERMS, &mut rng).expect("jigsaw net");
    let mut inference = mini_alexnet(CLASSES, &mut rng).expect("inference net");
    transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).expect("transfer");
    let set = PermutationSet::generate(PERMS, &mut rng).expect("perm set");
    (inference, jigsaw, set)
}

fn make_node(policy: DiagnosisPolicy) -> InsituNode {
    let (inference, jigsaw, set) = make_parts();
    let mut node =
        InsituNode::new(inference, jigsaw, set, policy, 3, SEED ^ 0x5A).expect("node");
    node.prewarm(BATCH).expect("prewarm");
    node
}

fn stage_data() -> Dataset {
    Dataset::generate(IMAGES, CLASSES, &Condition::in_situ(), &mut Rng::seed_from(SEED + 1))
        .expect("stage data")
}

/// (predictions, verdict bits, upload selection, uploaded bytes).
type OutcomeBits = (Vec<usize>, Vec<(bool, u32)>, Vec<usize>, u64);

fn outcome_bits(o: &StageOutcome) -> OutcomeBits {
    (
        o.predictions.clone(),
        o.verdicts.iter().map(|v| (v.valuable, v.score.to_bits())).collect(),
        o.valuable.clone(),
        o.uploaded_bytes,
    )
}

/// Median-of-reps wall time of one full stage, in nanoseconds.
fn time_stage(
    node: &mut InsituNode,
    data: &Dataset,
    quick: bool,
    run: impl Fn(&mut InsituNode, &Dataset) -> StageOutcome,
) -> u128 {
    // Warm-up beyond prewarm: settle the branch predictors and any
    // first-touch page faults in the freshly grown workspaces.
    std::hint::black_box(run(node, data));
    let reps = if quick { 3 } else { 9 };
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(run(node, data));
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median-of-reps wall time of the diagnosis layer alone (the part the
/// reuse layer accelerates; the stage numbers fold in the inference
/// forward both pipelines pay identically), in nanoseconds.
fn time_diagnosis(data: &Dataset, policy: DiagnosisPolicy, quick: bool, fused: bool) -> u128 {
    let (mut inference, mut jigsaw, set) = make_parts();
    // Warm the workspaces the same way the node does, then precompute
    // the logit cache the fused path would receive from the stage.
    inference
        .predict(&Tensor::zeros([BATCH, 3, 36, 36]))
        .expect("inference prewarm");
    let mut logit_chunks = Vec::new();
    let mut start = 0;
    while start < data.len() {
        let end = (start + BATCH).min(data.len());
        let sub = data.subset_range(start..end).expect("chunk");
        logit_chunks.push(inference.predict(sub.images()).expect("logits"));
        start = end;
    }
    let mut rng = Rng::seed_from(SEED ^ 0x5A);
    let mut run = |rng: &mut Rng| {
        if fused {
            diagnose_with_logits(policy, &logit_chunks, &mut jigsaw, &set, data, rng)
        } else {
            diagnose(policy, &mut inference, &mut jigsaw, &set, data, BATCH, rng)
        }
        .expect("diagnosis")
    };
    std::hint::black_box(run(&mut rng));
    let reps = if quick { 3 } else { 9 };
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(run(&mut rng));
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times the fused stage at i8 against f32 on two identically seeded
/// nodes, interleaving the reps so clock drift cancels out of the
/// ratio. Returns (f32 ns, i8 ns, median per-rep speedup).
fn time_stage_i8_vs_f32(
    f32_node: &mut InsituNode,
    i8_node: &mut InsituNode,
    data: &Dataset,
    quick: bool,
) -> (u128, u128, f64) {
    let run = |n: &mut InsituNode| std::hint::black_box(n.process_stage(data, BATCH).expect("stage"));
    run(f32_node);
    run(i8_node);
    let reps = if quick { 3 } else { 9 };
    let mut f32_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut i8_ns: Vec<u128> = Vec::with_capacity(reps);
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        run(f32_node);
        let f = t0.elapsed().as_nanos();
        let t0 = Instant::now();
        run(i8_node);
        let q = t0.elapsed().as_nanos();
        f32_ns.push(f);
        i8_ns.push(q);
        ratios.push(f.max(1) as f64 / q.max(1) as f64);
    }
    f32_ns.sort_unstable();
    i8_ns.sort_unstable();
    ratios.sort_by(f64::total_cmp);
    (f32_ns[reps / 2], i8_ns[reps / 2], ratios[reps / 2])
}

/// `jigsaw.trunk_passes` total over one telemetry-enabled stage.
fn counted_trunk_passes(
    node: &mut InsituNode,
    data: &Dataset,
    run: impl Fn(&mut InsituNode, &Dataset) -> StageOutcome,
) -> u64 {
    telemetry::set_enabled(true);
    telemetry::reset();
    std::hint::black_box(run(node, data));
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);
    telemetry::reset();
    snap.counter("jigsaw.trunk_passes", "").map_or(0, |c| c.total)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    telemetry::set_enabled(false);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = insitu_tensor::num_threads();
    let data = stage_data();
    let fused = |n: &mut InsituNode, d: &Dataset| n.process_stage(d, BATCH).expect("stage");
    let unfused =
        |n: &mut InsituNode, d: &Dataset| n.process_stage_unfused(d, BATCH).expect("stage");
    let mut rows = String::new();
    let mut all_identical = true;
    for &(name, policy) in POLICIES {
        // Equivalence gate first: same seed, both pipelines, bit-equal
        // outcomes — the reuse layer's contract, checked end to end.
        let identical = {
            let mut a = make_node(policy);
            let mut b = make_node(policy);
            outcome_bits(&fused(&mut a, &data)) == outcome_bits(&unfused(&mut b, &data))
        };
        all_identical &= identical;
        let fused_ns = time_stage(&mut make_node(policy), &data, quick, fused);
        let unfused_ns = time_stage(&mut make_node(policy), &data, quick, unfused);
        let speedup = unfused_ns as f64 / fused_ns.max(1) as f64;
        let diag_fused_ns = time_diagnosis(&data, policy, quick, true);
        let diag_unfused_ns = time_diagnosis(&data, policy, quick, false);
        let diag_speedup = diag_unfused_ns as f64 / diag_fused_ns.max(1) as f64;
        let passes_fused = counted_trunk_passes(&mut make_node(policy), &data, fused);
        let passes_unfused = counted_trunk_passes(&mut make_node(policy), &data, unfused);
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"policy\": \"{name}\", \"images\": {IMAGES}, \"batch\": {BATCH}, \
             \"fused_ns_per_stage\": {fused_ns}, \"unfused_ns_per_stage\": {unfused_ns}, \
             \"speedup\": {speedup:.2}, \"diag_fused_ns\": {diag_fused_ns}, \
             \"diag_unfused_ns\": {diag_unfused_ns}, \"diag_speedup\": {diag_speedup:.2}, \
             \"trunk_passes_fused\": {passes_fused}, \
             \"trunk_passes_unfused\": {passes_unfused}, \"identical\": {identical}}}"
        );
    }
    // The fixed-point row: same fused stage, i8 inference vs f32, plus
    // the held-out accuracy delta the planner's QuantProfile consumes.
    let precision_row = {
        let calib = Dataset::generate(
            IMAGES,
            CLASSES,
            &Condition::ideal(),
            &mut Rng::seed_from(SEED + 2),
        )
        .expect("calibration data");
        let eval = Dataset::generate(
            2 * IMAGES,
            CLASSES,
            &Condition::ideal(),
            &mut Rng::seed_from(SEED + 3),
        )
        .expect("eval data");
        let policy = DiagnosisPolicy::JigsawProbe { probes: 3 };
        let mut f32_node = make_node(policy);
        let mut i8_node = make_node(policy);
        i8_node.enable_quantized(&calib).expect("calibrate");
        i8_node.prewarm(BATCH).expect("i8 prewarm");
        let acc_f32 = f32_node.accuracy_on(&eval, BATCH).expect("f32 accuracy");
        let acc_i8 = i8_node.accuracy_on(&eval, BATCH).expect("i8 accuracy");
        let delta_points = (acc_i8 - acc_f32) * 100.0;
        let (f32_ns, i8_ns, speedup) =
            time_stage_i8_vs_f32(&mut f32_node, &mut i8_node, &data, quick);
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"policy\": \"jigsaw_probe_3\", \"images\": {IMAGES}, \"batch\": {BATCH}, \
             \"f32_ns_per_stage\": {f32_ns}, \"i8_ns_per_stage\": {i8_ns}, \
             \"speedup\": {speedup:.2}, \"acc_f32\": {acc_f32:.4}, \"acc_i8\": {acc_i8:.4}, \
             \"accuracy_delta_points\": {delta_points:.2}}}"
        );
        row
    };
    // Plain write, not println!: a downstream `head` closing the pipe
    // early is not worth a panic.
    use std::io::Write as _;
    let _ = writeln!(
        std::io::stdout(),
        "{{\n  \"bench\": \"node_stage\",\n  \"host_cores\": {cores},\n  \
         \"kernel_threads\": {threads},\n  \"quick\": {quick},\n  \"results\": [\n{rows}\n  ],\n  \
         \"precision_compare\": {precision_row}\n}}"
    );
    if !all_identical {
        eprintln!("node_snapshot: fused and unfused outcomes diverged");
        std::process::exit(1);
    }
}
