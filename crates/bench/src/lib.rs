//! # insitu-bench
//!
//! Criterion micro-benchmarks of the reproduction's hot kernels (GEMM,
//! im2col convolution, jigsaw forward, device-model evaluation, FPGA
//! architecture simulation) plus `harness = false` bench targets that
//! regenerate every table and figure of the paper's evaluation when
//! `cargo bench --workspace` runs.

#![warn(missing_docs)]

/// Name marker for the bench harness crate.
pub const CRATE: &str = "insitu-bench";
