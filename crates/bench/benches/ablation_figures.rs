//! Regenerates the design-space ablations. Scale comes from
//! `INSITU_SCALE` (default `fast`).

use insitu_experiments::{ablations, Scale};

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    println!("# scale = {scale}\n");
    println!("{}", ablations::diagnosis_policy(scale, seed).expect("policy").table());
    println!("{}", ablations::share_depth(scale, seed).expect("share depth").table());
    println!("{}", ablations::wss_group().expect("wss group").table());
    println!("{}", ablations::permutation_set(scale, seed).expect("perm set").table());
}
