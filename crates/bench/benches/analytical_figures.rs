//! Regenerates the analytical-model figures of the evaluation:
//! Fig. 11, 12, 14, 15, 16, 21, 22, 23. These take milliseconds, so
//! they always run in full.

use insitu_experiments::{fig11, fig12, fig14, fig15, fig16, fig21, fig22, fig23};

fn main() {
    println!("{}", fig11::run().expect("fig11").table());
    println!("{}", fig12::run().expect("fig12").table());
    println!("{}", fig14::run().expect("fig14").table());
    println!("{}", fig15::run().expect("fig15").table());
    println!("{}", fig16::run().expect("fig16").table());
    println!("{}", fig21::run().expect("fig21").table());
    println!("{}", fig22::run().expect("fig22").table());
    println!("{}", fig23::run().expect("fig23").table());
}
