//! Criterion micro-benchmarks of the numeric kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use insitu_nn::models::{jigsaw_network, mini_alexnet};
use insitu_nn::{Mode, Network};
use insitu_tensor::{conv2d_forward, matmul, set_num_threads, ConvGeometry, Rng, Tensor};
use std::hint::black_box;

/// The GEMM shapes the lowered convolutions actually run (Eq. 1's
/// `Fm × Dm` per sample): M = out_channels, K = in_channels·K²,
/// N = out_h·out_w·batch. Square GEMMs flatter the cache; these
/// rectangles are what im2col hands the kernel.
const PAPER_GEMM_SHAPES: &[(&str, usize, usize, usize)] = &[
    ("alex_conv2_b8 24x144x2592", 24, 144, 324 * 8),
    ("alex_conv3_b8 32x216x648", 32, 216, 81 * 8),
    ("jigsaw_conv2_b8 24x144x128", 24, 144, 16 * 8),
];

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mut rng = Rng::seed_from(1);
    for &n in &[32usize, 128] {
        let a = Tensor::rand_uniform([n, n], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([n, n], -1.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
        });
    }
    for &(name, m, k, n) in PAPER_GEMM_SHAPES {
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_function(name, |bench| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
        });
    }
    group.finish();
}

/// The same paper-shape GEMMs swept across worker-pool sizes. On a
/// multi-core host the bands scale; on a single-core host (like the
/// reproduction container) this instead measures pool overhead — which
/// is the number worth watching there.
fn bench_gemm_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_parallel");
    let mut rng = Rng::seed_from(4);
    let (_, m, k, n) = PAPER_GEMM_SHAPES[0];
    let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
    group.throughput(Throughput::Elements((2 * m * k * n) as u64));
    for threads in [1usize, 2, 4] {
        set_num_threads(threads);
        group.bench_function(format!("alex_conv2_b8 t{threads}"), |bench| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
        });
    }
    set_num_threads(1);
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let g = ConvGeometry::new(16, 18, 18, 24, 3, 1, 1).unwrap();
    let x = Tensor::rand_uniform([4, 16, 18, 18], -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform([24, 16, 3, 3], -0.2, 0.2, &mut rng);
    let b = Tensor::zeros([24]);
    c.bench_function("conv2d_forward b4 16->24 18x18", |bench| {
        bench.iter(|| conv2d_forward(black_box(&x), &w, &b, &g).unwrap())
    });
}

fn bench_networks(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let mut alex = mini_alexnet(8, &mut rng).unwrap();
    let x = Tensor::rand_uniform([8, 3, 36, 36], 0.0, 1.0, &mut rng);
    c.bench_function("mini_alexnet forward b8", |bench| {
        bench.iter(|| alex.forward(black_box(&x), Mode::Eval).unwrap())
    });

    let mut jig = jigsaw_network(16, &mut rng).unwrap();
    let jx = Tensor::rand_uniform([4, 9, 3, 12, 12], 0.0, 1.0, &mut rng);
    c.bench_function("jigsaw forward b4", |bench| {
        bench.iter(|| jig.forward(black_box(&jx), Mode::Eval).unwrap())
    });

    c.bench_function("mini_alexnet train step b8", |bench| {
        bench.iter_batched(
            || Tensor::rand_uniform([8, 3, 36, 36], 0.0, 1.0, &mut rng),
            |xb| {
                alex.zero_grads();
                let y = alex.forward(&xb, Mode::Train).unwrap();
                let (_, d) = insitu_nn::softmax_cross_entropy(&y, &[0; 8]).unwrap();
                alex.backward(&d).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_device_models(c: &mut Criterion) {
    use insitu_devices::{FpgaModel, GpuModel, NetworkShapes};
    let gpu = GpuModel::tx1();
    let fpga = FpgaModel::vx690t();
    let net = NetworkShapes::alexnet();
    c.bench_function("gpu batch_breakdown b16", |bench| {
        bench.iter(|| gpu.batch_breakdown(black_box(&net), 16))
    });
    c.bench_function("gpu optimal_batch sweep", |bench| {
        bench.iter(|| gpu.optimal_batch(black_box(&net), 0.1, 128))
    });
    c.bench_function("fpga batch_breakdown b16", |bench| {
        bench.iter(|| fpga.batch_breakdown(black_box(&net), 16))
    });
}

fn bench_fpga_sim(c: &mut Criterion) {
    use insitu_devices::NetworkShapes;
    use insitu_fpga::{design_throughput, ArchKind, CorunConfig, Design};
    let convs = NetworkShapes::alexnet().convs();
    let cfg = CorunConfig::paper(3);
    c.bench_function("wss corun sim", |bench| {
        bench.iter(|| cfg.run(ArchKind::Wss, black_box(&convs)))
    });
    let net = NetworkShapes::alexnet();
    let spec = insitu_devices::FpgaSpec::vx690t();
    c.bench_function("wss-nws design_throughput @100ms", |bench| {
        bench.iter(|| design_throughput(Design::WssNws, spec, black_box(&net), 0.1, 64))
    });
}

/// Small sample budget: the heavy targets are full training steps, and
/// the reproduction machines are often single-core.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gemm, bench_gemm_parallel, bench_conv, bench_networks, bench_device_models, bench_fpga_sim
}
criterion_main!(benches);
