//! Regenerates the end-to-end Cloud comparison: Table II and Fig. 25,
//! plus the headline claims. Scale comes from `INSITU_SCALE`
//! (default `fast`).

use insitu_experiments::{endtoend, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("# scale = {scale}\n");
    let out = endtoend::run(scale, 42).expect("endtoend campaign");
    println!("{}", out.table2());
    println!("{}", out.fig25());
    println!("{}", out.accuracy_table());
    println!("{}", out.headline().table());
}
