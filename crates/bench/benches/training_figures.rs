//! Regenerates the training-based figures: Table I, Fig. 5, Fig. 6,
//! Fig. 7. Scale comes from `INSITU_SCALE` (default `fast`).

use insitu_experiments::{fig5, fig6, fig7, table1, Scale};

fn main() {
    let scale = Scale::from_env();
    let seed = 42;
    println!("# scale = {scale}\n");
    println!("{}", table1::run(scale, seed).expect("table1").table());
    println!("{}", fig5::run(scale, seed).expect("fig5").table());
    println!("{}", fig6::run(scale, seed).expect("fig6").table());
    println!("{}", fig7::run(scale, seed).expect("fig7").table());
}
