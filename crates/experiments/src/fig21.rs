//! Fig. 21 — Single-running mode: speedup of the time-model-guided
//! batch selection over the non-batching method, against the
//! brute-force best, for AlexNet- and VGG-based inference.
//!
//! "Speedup" is throughput at the chosen batch relative to batch 1,
//! subject to the latency requirement. Expected shape: AlexNet gains
//! ~3× on average (its layers underutilize the GPU at batch 1); VGG
//! gains only ~1.1×; the time-model pick is within a whisker of the
//! exhaustive search.

use crate::report::{f, secs, Table};
use crate::Result;
use insitu_devices::{GpuModel, NetworkShapes};

/// One latency-requirement evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Network name.
    pub network: String,
    /// Latency requirement, seconds.
    pub t_user: f64,
    /// Batch chosen by the time model.
    pub model_batch: usize,
    /// Throughput speedup of the time-model pick over batch 1.
    pub model_speedup: f64,
    /// Throughput speedup of the brute-force best over batch 1.
    pub best_speedup: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// All (network, requirement) points.
    pub points: Vec<Point>,
    /// Mean speedup per network (`(alexnet, vgg)`).
    pub mean_speedups: (f64, f64),
}

/// Latency requirements swept, seconds.
pub const REQUIREMENTS: [f64; 5] = [0.05, 0.1, 0.2, 0.4, 0.8];

/// Runs the sweep.
///
/// # Errors
///
/// Infallible in practice; returns `Result` for harness uniformity.
pub fn run() -> Result<Output> {
    let gpu = GpuModel::tx1();
    let mut points = Vec::new();
    let mut means = Vec::new();
    for net in [NetworkShapes::alexnet(), NetworkShapes::vgg16()] {
        let base_tput = gpu.throughput(&net, 1);
        let mut acc = 0.0;
        let mut count = 0usize;
        for &t_user in &REQUIREMENTS {
            let Some(model_batch) = gpu.optimal_batch(&net, t_user, 256) else {
                continue; // requirement infeasible even at batch 1
            };
            let model_speedup = gpu.throughput(&net, model_batch) / base_tput;
            let best_speedup = gpu
                .brute_force_best(&net, t_user, 256)
                .map(|(b, _)| gpu.throughput(&net, b) / base_tput)
                .unwrap_or(1.0);
            acc += model_speedup;
            count += 1;
            points.push(Point {
                network: net.name.clone(),
                t_user,
                model_batch,
                model_speedup,
                best_speedup,
            });
        }
        means.push(if count > 0 { acc / count as f64 } else { 0.0 });
    }
    Ok(Output { points, mean_speedups: (means[0], means[1]) })
}

impl Output {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 21: time-model batch selection vs non-batching (GPU)",
            &["network", "T_user", "picked batch", "model speedup", "best speedup"],
        );
        for p in &self.points {
            t.push_row(vec![
                p.network.clone(),
                secs(p.t_user),
                p.model_batch.to_string(),
                format!("{}x", f(p.model_speedup, 2)),
                format!("{}x", f(p.best_speedup, 2)),
            ]);
        }
        t.push_row(vec![
            "mean".into(),
            "-".into(),
            "-".into(),
            format!(
                "alexnet {}x / vgg16 {}x",
                f(self.mean_speedups.0, 2),
                f(self.mean_speedups.1, 2)
            ),
            "-".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_gains_much_more_than_vgg() {
        let out = run().unwrap();
        let (alex, vgg) = out.mean_speedups;
        // Paper: ~3x average for AlexNet, ~1.1x for VGG.
        assert!(alex > 2.0, "alexnet mean speedup {alex}");
        assert!(vgg < alex / 1.5, "vgg {vgg} vs alexnet {alex}");
        assert!(vgg >= 1.0);
    }

    #[test]
    fn model_pick_close_to_brute_force() {
        let out = run().unwrap();
        for p in &out.points {
            assert!(
                p.model_speedup >= 0.9 * p.best_speedup,
                "{} @ {}: model {} vs best {}",
                p.network,
                p.t_user,
                p.model_speedup,
                p.best_speedup
            );
        }
    }

    #[test]
    fn speedups_never_below_one() {
        let out = run().unwrap();
        for p in &out.points {
            assert!(p.model_speedup >= 1.0 - 1e-9);
        }
    }
}
