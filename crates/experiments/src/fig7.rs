//! Fig. 7 — does fine-tuning on only the *valuable* (mispredicted)
//! data match fine-tuning on everything?
//!
//! The paper's protocol: train `Net-50k` on the first 50k images; run
//! it over the remaining 150k and collect the errors; then compare
//! `Net-Err` (fine-tuned on the errors alone) against `Net-50k-150k`
//! (all remaining data) and `Net-50k-200k` (everything). Expected
//! shape: `Net-Err` ≈ `Net-50k-200k` accuracy at a fraction of the
//! data movement and fine-tuning time.

use crate::report::{pct, Table};
use crate::scale::Scale;
use crate::Result;
use insitu_data::{Condition, Dataset};
use insitu_nn::models::mini_alexnet;
use insitu_nn::serialize::{load_state_dict, state_dict};
use insitu_nn::{evaluate, predictions, train, LabeledBatch, TrainConfig};
use insitu_tensor::Rng;

/// One variant's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Variant name (`Net-50k`, `Net-Err`, …).
    pub name: String,
    /// Images used for the fine-tuning step (0 for the base model).
    pub fine_tune_images: usize,
    /// Modeled fine-tuning cost in ops.
    pub fine_tune_ops: u64,
    /// Held-out accuracy.
    pub accuracy: f32,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// Rows: Net-50k, Net-Err, Net-50k-150k, Net-50k-200k.
    pub rows: Vec<Row>,
}

impl Output {
    /// Looks a row up by name.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 7: incremental training on valuable data only",
            &["variant", "fine-tune imgs", "fine-tune ops", "accuracy"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.name.clone(),
                r.fine_tune_images.to_string(),
                format!("{:.2e}", r.fine_tune_ops as f64),
                pct(r.accuracy as f64),
            ]);
        }
        t
    }
}

/// Runs the experiment. The stream uses a mild in-situ condition so
/// the base model makes enough mistakes for `Net-Err` to learn from.
///
/// # Errors
///
/// Returns an error on training failures.
pub fn run(scale: Scale, seed: u64) -> Result<Output> {
    let mut rng = Rng::seed_from(seed);
    let classes = scale.classes();
    let condition = Condition::with_severity(0.65)?;
    let base_n = 50 * scale.images_per_k();
    let rest_n = 150 * scale.images_per_k();
    let base_set = Dataset::generate(base_n, classes, &condition, &mut rng)?;
    let rest_set = Dataset::generate(rest_n, classes, &condition, &mut rng)?;
    let eval = Dataset::generate(scale.eval_images(), classes, &condition, &mut rng)?;

    // Net-50k: the base model.
    let mut base = mini_alexnet(classes, &mut rng)?;
    // The base model is deliberately *incomplete* (the paper's
    // Net-50k is far from converged on 50k of 1.2M images): a short
    // budget leaves a sizeable error set on the remaining stream,
    // which is the regime where error-only fine-tuning genuinely
    // carries the distribution's information.
    let base_cfg = TrainConfig {
        epochs: scale.pick(1, 2, 3),
        batch_size: 16,
        lr: 0.005,
        ..Default::default()
    };
    train(
        &mut base,
        LabeledBatch::new(base_set.images(), base_set.labels())?,
        None,
        &base_cfg,
        &mut rng,
    )?;
    let base_params = state_dict(&mut base);
    let base_acc = evaluate(&mut base, LabeledBatch::new(eval.images(), eval.labels())?, 32)?;

    // Select the errors on the remaining stream.
    let mut err_indices = Vec::new();
    let all: Vec<usize> = (0..rest_set.len()).collect();
    for chunk in all.chunks(64) {
        let sub = rest_set.subset(chunk)?;
        let logits = base.predict(sub.images())?;
        let preds = predictions(&logits)?;
        for (j, (&p, &l)) in preds.iter().zip(sub.labels()).enumerate() {
            if p != l {
                err_indices.push(chunk[j]);
            }
        }
    }
    let err_set = rest_set.subset(&err_indices)?;
    let full_set = base_set.concat(&rest_set)?;

    let ft_cfg = TrainConfig {
        epochs: scale.fine_tune_epochs(),
        batch_size: 16,
        lr: 0.005,
        ..Default::default()
    };
    let mut rows = vec![Row {
        name: "Net-50k".into(),
        fine_tune_images: 0,
        fine_tune_ops: 0,
        accuracy: base_acc,
    }];
    for (name, set) in [
        ("Net-Err", &err_set),
        ("Net-50k-150k", &rest_set),
        ("Net-50k-200k", &full_set),
    ] {
        let mut net = mini_alexnet(classes, &mut rng)?;
        load_state_dict(&mut net, &base_params)?;
        let report = if set.is_empty() {
            None
        } else {
            Some(train(
                &mut net,
                LabeledBatch::new(set.images(), set.labels())?,
                None,
                &ft_cfg,
                &mut rng,
            )?)
        };
        let accuracy =
            evaluate(&mut net, LabeledBatch::new(eval.images(), eval.labels())?, 32)?;
        rows.push(Row {
            name: name.into(),
            fine_tune_images: set.len(),
            fine_tune_ops: report.map_or(0, |r| r.total_ops),
            accuracy,
        });
    }
    Ok(Output { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rows_and_cost_ordering() {
        let out = run(Scale::Smoke, 4).unwrap();
        assert_eq!(out.rows.len(), 4);
        let err = out.row("Net-Err").unwrap();
        let rest = out.row("Net-50k-150k").unwrap();
        let full = out.row("Net-50k-200k").unwrap();
        // Net-Err fine-tunes on strictly less data & ops.
        assert!(err.fine_tune_images <= rest.fine_tune_images);
        assert!(rest.fine_tune_images < full.fine_tune_images);
        assert!(err.fine_tune_ops <= rest.fine_tune_ops);
        assert_eq!(out.table().row_count(), 4);
    }
}
