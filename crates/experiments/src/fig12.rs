//! Fig. 12 — runtime breakdown of the inference task (CONV vs FCN)
//! across batch sizes, on GPU and FPGA.
//!
//! Expected shape: FCN layers account for a large share (paper: up to
//! ~50%) at batch sizes 1–4 and shrink as batching amortizes the FCN
//! weights.

use crate::report::{pct, Table};
use crate::Result;
use insitu_devices::{FpgaModel, GpuModel, NetworkShapes};

/// One breakdown point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Batch size.
    pub batch: usize,
    /// FCN share of GPU runtime in `[0, 1]`.
    pub gpu_fc_fraction: f64,
    /// FCN share of FPGA runtime in `[0, 1]`.
    pub fpga_fc_fraction: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// Batch sweep points.
    pub points: Vec<Point>,
}

/// The batch sizes swept.
pub const BATCHES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Runs the sweep. The FPGA here is the *unbatched* baseline design
/// (paper Fig. 9), matching the characterization section.
///
/// # Errors
///
/// Infallible in practice; returns `Result` for harness uniformity.
pub fn run() -> Result<Output> {
    let net = NetworkShapes::alexnet();
    let gpu = GpuModel::tx1();
    let fpga = FpgaModel::vx690t().with_fcn_batch_opt(false);
    let points = BATCHES
        .iter()
        .map(|&batch| Point {
            batch,
            gpu_fc_fraction: gpu.batch_breakdown(&net, batch).fc_fraction(),
            fpga_fc_fraction: fpga.batch_breakdown(&net, batch).fc_fraction(),
        })
        .collect();
    Ok(Output { points })
}

impl Output {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 12: FCN share of AlexNet inference runtime",
            &["batch", "GPU FCN share", "FPGA FCN share"],
        );
        for p in &self.points {
            t.push_row(vec![
                p.batch.to_string(),
                pct(p.gpu_fc_fraction),
                pct(p.fpga_fc_fraction),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcn_is_heavy_at_small_batch_and_shrinks_on_gpu() {
        let out = run().unwrap();
        let b1 = &out.points[0];
        assert!(b1.gpu_fc_fraction > 0.3, "gpu b1 {}", b1.gpu_fc_fraction);
        assert!(b1.fpga_fc_fraction > 0.3, "fpga b1 {}", b1.fpga_fc_fraction);
        let b32 = out.points.last().unwrap();
        assert!(b32.gpu_fc_fraction < b1.gpu_fc_fraction / 2.0);
    }

    #[test]
    fn fractions_are_valid() {
        let out = run().unwrap();
        for p in &out.points {
            assert!((0.0..=1.0).contains(&p.gpu_fc_fraction));
            assert!((0.0..=1.0).contains(&p.fpga_fc_fraction));
        }
        assert_eq!(out.table().row_count(), BATCHES.len());
    }
}
