//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--scale smoke|fast|full] [--seed N] [EXPERIMENT ...]
//! repro --list
//! ```
//!
//! With no experiment names, everything runs (the full evaluation
//! section). Experiment names: `table1 fig5 fig6 fig7 fig11 fig12
//! fig14 fig15 fig16 fig21 fig22 fig23 table2 fig25 ablations`.

use insitu_experiments::{ablations, endtoend, Scale};
use std::time::Instant;

const ALL: &[&str] = &[
    "table1", "fig5", "fig6", "fig7", "fig11", "fig12", "fig14", "fig15", "fig16", "fig21",
    "fig22", "fig23", "table2", "fig25", "ablations",
];

fn main() {
    let mut scale = Scale::from_env();
    let mut seed = 42u64;
    let mut picks: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for e in ALL {
                    println!("{e}");
                }
                return;
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("smoke") => Scale::Smoke,
                    Some("fast") => Scale::Fast,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?} (smoke|fast|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => picks.push(other.to_string()),
        }
    }
    if picks.is_empty() {
        picks = ALL.iter().map(|s| s.to_string()).collect();
    }
    println!("# In-situ AI reproduction — scale={scale}, seed={seed}\n");
    let started = Instant::now();
    // Table II and Fig. 25 come from one simulation: run it once.
    let mut endtoend_cache: Option<endtoend::Output> = None;
    for pick in &picks {
        let t0 = Instant::now();
        let result: Result<(), insitu_experiments::Error> = (|| {
            match pick.as_str() {
                "table1" => println!("{}", insitu_experiments::table1::run(scale, seed)?.table()),
                "fig5" => println!("{}", insitu_experiments::fig5::run(scale, seed)?.table()),
                "fig6" => println!("{}", insitu_experiments::fig6::run(scale, seed)?.table()),
                "fig7" => println!("{}", insitu_experiments::fig7::run(scale, seed)?.table()),
                "fig11" => println!("{}", insitu_experiments::fig11::run()?.table()),
                "fig12" => println!("{}", insitu_experiments::fig12::run()?.table()),
                "fig14" => println!("{}", insitu_experiments::fig14::run()?.table()),
                "fig15" => println!("{}", insitu_experiments::fig15::run()?.table()),
                "fig16" => println!("{}", insitu_experiments::fig16::run()?.table()),
                "fig21" => println!("{}", insitu_experiments::fig21::run()?.table()),
                "fig22" => println!("{}", insitu_experiments::fig22::run()?.table()),
                "fig23" => println!("{}", insitu_experiments::fig23::run()?.table()),
                "table2" | "fig25" => {
                    if endtoend_cache.is_none() {
                        endtoend_cache = Some(endtoend::run(scale, seed)?);
                    }
                    let out = endtoend_cache.as_ref().expect("just filled");
                    if pick == "table2" {
                        println!("{}", out.table2());
                    } else {
                        println!("{}", out.fig25());
                        println!("{}", out.accuracy_table());
                        println!("{}", out.headline().table());
                    }
                }
                "ablations" => {
                    println!("{}", ablations::diagnosis_policy(scale, seed)?.table());
                    println!("{}", ablations::share_depth(scale, seed)?.table());
                    println!("{}", ablations::wss_group()?.table());
                    println!("{}", ablations::permutation_set(scale, seed)?.table());
                }
                other => {
                    eprintln!("unknown experiment `{other}` (try --list)");
                    std::process::exit(2);
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => println!("[{pick} done in {:.1} s]\n", t0.elapsed().as_secs_f64()),
            Err(e) => {
                eprintln!("{pick} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("# all done in {:.1} s", started.elapsed().as_secs_f64());
}
