//! Table I — accuracy of statically trained CNN models on ideal vs
//! real (in-situ) IoT data.
//!
//! The paper trains AlexNet/GoogLeNet/VGGNet on ImageNet and tests on
//! Snapshot Serengeti: 80→54%, 83→62%, 93→72%. We train the Mini
//! counterparts on curated synthetic data and test on the drifted
//! in-situ distribution. Expected shape: every model loses a large
//! slice of accuracy; the deeper/wider models rank higher on both
//! columns.

use crate::report::{pct, Table};
use crate::scale::Scale;
use crate::Result;
use insitu_data::{Condition, Dataset};
use insitu_nn::models::{mini_alexnet, mini_googlenet, mini_vgg};
use insitu_nn::{evaluate, train, LabeledBatch, Sequential, TrainConfig};
use insitu_tensor::Rng;

/// One model's row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Accuracy on curated (ideal) held-out data.
    pub ideal_accuracy: f32,
    /// Accuracy on drifted in-situ data.
    pub insitu_accuracy: f32,
}

/// The table's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// One row per model, in AlexNet/GoogLeNet/VGG order.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error on training failures.
pub fn run(scale: Scale, seed: u64) -> Result<Output> {
    let mut rng = Rng::seed_from(seed);
    let classes = scale.classes();
    let n_train = 100 * scale.images_per_k() * 2;
    let train_set = Dataset::generate(n_train, classes, &Condition::ideal(), &mut rng)?;
    let eval_ideal =
        Dataset::generate(scale.eval_images(), classes, &Condition::ideal(), &mut rng)?;
    // The Serengeti analog: the harshest drift the environment model
    // produces (animals against the lens, night, heavy weather).
    let harsh = Condition::with_severity(1.0)?;
    let eval_insitu = Dataset::generate(scale.eval_images(), classes, &harsh, &mut rng)?;

    let cfg = TrainConfig {
        epochs: scale.epochs(),
        batch_size: 16,
        lr: 0.005,
        ..Default::default()
    };
    type Builder = Box<dyn Fn(&mut Rng) -> insitu_nn::Result<Sequential>>;
    let builders: Vec<(&str, Builder)> = vec![
        ("mini-alexnet", Box::new(move |r| mini_alexnet(classes, r))),
        ("mini-googlenet", Box::new(move |r| mini_googlenet(classes, r))),
        ("mini-vgg", Box::new(move |r| mini_vgg(classes, r))),
    ];
    let mut rows = Vec::new();
    for (name, build) in builders {
        let mut net = build(&mut rng)?;
        train(
            &mut net,
            LabeledBatch::new(train_set.images(), train_set.labels())?,
            None,
            &cfg,
            &mut rng,
        )?;
        let ideal_accuracy = evaluate(
            &mut net,
            LabeledBatch::new(eval_ideal.images(), eval_ideal.labels())?,
            32,
        )?;
        let insitu_accuracy = evaluate(
            &mut net,
            LabeledBatch::new(eval_insitu.images(), eval_insitu.labels())?,
            32,
        )?;
        rows.push(Row { model: name.to_string(), ideal_accuracy, insitu_accuracy });
    }
    Ok(Output { rows })
}

impl Output {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table I: static models on ideal vs in-situ data",
            &["model", "ideal acc", "in-situ acc", "drop"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.model.clone(),
                pct(r.ideal_accuracy as f64),
                pct(r.insitu_accuracy as f64),
                pct((r.ideal_accuracy - r.insitu_accuracy) as f64),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_has_three_rows() {
        let out = run(Scale::Smoke, 1).unwrap();
        assert_eq!(out.rows.len(), 3);
        for r in &out.rows {
            assert!((0.0..=1.0).contains(&r.ideal_accuracy));
            assert!((0.0..=1.0).contains(&r.insitu_accuracy));
        }
        assert_eq!(out.table().row_count(), 3);
    }
}
