//! Fig. 22 — CONV-layer runtime (compute + off-chip data access) of
//! the three co-running architectures NWS, WS, WSS at 2628 PEs, under
//! the CONV-0/3/5 weight-sharing strategies.
//!
//! Expected shape: WSS has the best compute time and WS the worst
//! (engine idleness); WSS's data-access time is far below NWS's and
//! shrinks as more layers are shared.

use crate::report::{secs, Table};
use crate::Result;
use insitu_devices::NetworkShapes;
use insitu_fpga::{ArchKind, CorunConfig, CorunReport};

/// One (architecture, sharing-strategy) evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Architecture evaluated.
    pub arch: ArchKind,
    /// Leading layers shared (0, 3 or 5).
    pub shared_layers: usize,
    /// Full co-run report.
    pub report: CorunReport,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// All (arch, strategy) points.
    pub points: Vec<Point>,
}

/// Sharing strategies swept (the paper's CONV-0/3/5).
pub const SHARING: [usize; 3] = [0, 3, 5];

/// Runs the comparison on AlexNet's CONV stack.
///
/// # Errors
///
/// Infallible in practice; returns `Result` for harness uniformity.
pub fn run() -> Result<Output> {
    let convs = NetworkShapes::alexnet().convs();
    let mut points = Vec::new();
    for &shared in &SHARING {
        let cfg = CorunConfig::paper(shared);
        for arch in ArchKind::all() {
            points.push(Point { arch, shared_layers: shared, report: cfg.run(arch, &convs) });
        }
    }
    Ok(Output { points })
}

impl Output {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 22: co-running CONV runtime at 2628 PEs (compute + data access)",
            &["sharing", "arch", "compute", "data access", "total", "diag idle"],
        );
        for p in &self.points {
            t.push_row(vec![
                format!("CONV-{}", p.shared_layers),
                p.arch.name().to_string(),
                secs(p.report.compute_s),
                secs(p.report.data_access_s),
                secs(p.report.total_s()),
                format!("{:.0}%", p.report.diagnosis_idle_fraction * 100.0),
            ]);
        }
        t
    }

    /// The report for one (architecture, sharing) combination.
    pub fn find(&self, arch: ArchKind, shared: usize) -> &CorunReport {
        &self
            .points
            .iter()
            .find(|p| p.arch == arch && p.shared_layers == shared)
            .expect("all combinations present")
            .report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wss_best_ws_worst_compute() {
        let out = run().unwrap();
        for &s in &SHARING {
            let nws = out.find(ArchKind::Nws, s);
            let ws = out.find(ArchKind::Ws, s);
            let wss = out.find(ArchKind::Wss, s);
            assert!(wss.compute_s < nws.compute_s, "CONV-{s}");
            assert!(nws.compute_s < ws.compute_s, "CONV-{s}");
            assert!(wss.total_s() < nws.total_s() && wss.total_s() < ws.total_s());
        }
    }

    #[test]
    fn wss_data_access_shrinks_with_sharing() {
        let out = run().unwrap();
        let d0 = out.find(ArchKind::Wss, 0).data_access_s;
        let d3 = out.find(ArchKind::Wss, 3).data_access_s;
        let d5 = out.find(ArchKind::Wss, 5).data_access_s;
        assert!(d0 > d3 && d3 > d5);
        // NWS can't exploit sharing.
        let n0 = out.find(ArchKind::Nws, 0).data_access_s;
        let n5 = out.find(ArchKind::Nws, 5).data_access_s;
        assert!((n0 - n5).abs() < 1e-12);
        assert!(n0 > 2.0 * d0);
    }

    #[test]
    fn nine_points_rendered() {
        let out = run().unwrap();
        assert_eq!(out.points.len(), 9);
        assert_eq!(out.table().row_count(), 9);
    }
}
