//! The end-to-end Cloud comparison: Table II (normalized data
//! movement) and Fig. 25 (Cloud energy and model-update time) come
//! from the same simulation — the four IoT system organizations of
//! the paper's Fig. 24 processing an identical five-stage acquisition
//! campaign.
//!
//! Headline claims this reproduces: data movement reduced by 28–71%,
//! model-update speedup 1.4–3.3×, energy saving 30–70%.

use crate::report::{bytes, f, pct, secs, Table};
use crate::scale::Scale;
use crate::Result;
use insitu_cloud::{run_campaign, IncrementalConfig, StageReport, SystemConfig, SystemKind};
use insitu_data::Campaign;

/// The simulation's full output.
#[derive(Debug, Clone)]
pub struct Output {
    /// Stage reports per system, in (a)–(d) order.
    pub reports: Vec<(SystemKind, Vec<StageReport>)>,
    /// Stage names.
    pub stage_names: Vec<String>,
}

/// Runs all four systems on the same campaign, in parallel threads.
///
/// # Errors
///
/// Returns an error on training failures in any variant.
pub fn run(scale: Scale, seed: u64) -> Result<Output> {
    let campaign = Campaign::paper_schedule(scale.images_per_k(), scale.classes(), seed)?;
    let cfg = SystemConfig {
        incremental: IncrementalConfig {
            epochs: scale.fine_tune_epochs(),
            batch_size: 16,
            lr: 0.005,
            threads: None,
            holdout: None,
        },
        bootstrap: IncrementalConfig { epochs: scale.epochs(), batch_size: 16, lr: 0.005, threads: None, holdout: None },
        eval_per_stage: scale.eval_images(),
        seed,
        ..Default::default()
    };
    let stage_names: Vec<String> =
        campaign.stages().iter().map(|s| s.name.clone()).collect();
    let mut results: Vec<Option<(SystemKind, Vec<StageReport>)>> =
        SystemKind::all().iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for kind in SystemKind::all() {
            let campaign = &campaign;
            let cfg = cfg.clone();
            handles.push((
                kind,
                scope.spawn(move || run_campaign(kind, campaign, cfg)),
            ));
        }
        for (slot, (kind, handle)) in results.iter_mut().zip(handles) {
            let reports = handle
                .join()
                .map_err(|_| format!("campaign thread for {} panicked", kind.name()))
                .and_then(|r| r.map_err(|e| e.to_string()));
            *slot = Some((kind, reports.map_err(crate::Error::from)?));
        }
        Ok::<(), crate::Error>(())
    })?;
    Ok(Output {
        reports: results.into_iter().map(|r| r.expect("filled above")).collect(),
        stage_names,
    })
}

impl Output {
    /// Reports for one system kind.
    pub fn of(&self, kind: SystemKind) -> &[StageReport] {
        &self
            .reports
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("all four kinds simulated")
            .1
    }

    /// Table II: per-stage data movement of (c)/(d), normalized to the
    /// all-data systems (a)/(b).
    pub fn table2(&self) -> Table {
        let mut t = Table::new(
            "Table II: normalized data movement per update stage",
            &{
                let mut h = vec!["IoT system"];
                h.extend(self.stage_names.iter().map(String::as_str));
                h
            }[..],
        );
        let a = self.of(SystemKind::Traditional);
        let d = self.of(SystemKind::InsituAi);
        let norm = |x: &StageReport, base: &StageReport| {
            if base.uploaded_bytes == 0 {
                0.0
            } else {
                x.uploaded_bytes as f64 / base.uploaded_bytes as f64
            }
        };
        let mut row_ab = vec!["a/b".to_string()];
        let mut row_cd = vec!["c/d".to_string()];
        for (sa, sd) in a.iter().zip(d) {
            row_ab.push(f(norm(sa, sa), 2));
            row_cd.push(f(norm(sd, sa), 2));
        }
        t.push_row(row_ab);
        t.push_row(row_cd);
        t
    }

    /// Fig. 25: per-stage Cloud energy and model-update time for the
    /// four systems, plus the speedup of (d) over (a).
    pub fn fig25(&self) -> Table {
        let mut t = Table::new(
            "Fig. 25: Cloud energy and model-update time per stage",
            &["stage", "system", "uploaded", "energy (J)", "update time", "d-speedup vs a"],
        );
        let a = self.of(SystemKind::Traditional);
        for (i, name) in self.stage_names.iter().enumerate() {
            for (kind, reports) in &self.reports {
                let s = &reports[i];
                let speed = if *kind == SystemKind::InsituAi {
                    format!("{}x", f(a[i].update_time_s() / s.update_time_s().max(1e-12), 2))
                } else {
                    "-".into()
                };
                t.push_row(vec![
                    name.clone(),
                    kind.name().into(),
                    bytes(s.uploaded_bytes),
                    f(s.total_energy_j(), 1),
                    secs(s.update_time_s()),
                    speed,
                ]);
            }
        }
        t
    }

    /// Accuracy trajectory table (sanity view: In-situ AI keeps pace
    /// with the all-data system).
    pub fn accuracy_table(&self) -> Table {
        let mut t = Table::new("End-to-end accuracy per stage", &{
            let mut h = vec!["system"];
            h.extend(self.stage_names.iter().map(String::as_str));
            h
        });
        for (kind, reports) in &self.reports {
            let mut row = vec![kind.name().to_string()];
            row.extend(reports.iter().map(|s| pct(s.accuracy_after as f64)));
            t.push_row(row);
        }
        t
    }

    /// Headline numbers over the post-bootstrap stages: data-movement
    /// reduction, update-time speedup range, and energy saving of (d)
    /// vs (a).
    pub fn headline(&self) -> Headline {
        let a = self.of(SystemKind::Traditional);
        let d = self.of(SystemKind::InsituAi);
        let post = 1..a.len();
        let a_bytes: u64 = post.clone().map(|i| a[i].uploaded_bytes).sum();
        let d_bytes: u64 = post.clone().map(|i| d[i].uploaded_bytes).sum();
        let speedups: Vec<f64> = post
            .clone()
            .map(|i| a[i].update_time_s() / d[i].update_time_s().max(1e-12))
            .collect();
        let a_energy: f64 = post.clone().map(|i| a[i].total_energy_j()).sum();
        let d_energy: f64 = post.clone().map(|i| d[i].total_energy_j()).sum();
        Headline {
            movement_reduction: 1.0 - d_bytes as f64 / a_bytes.max(1) as f64,
            min_speedup: speedups.iter().copied().fold(f64::INFINITY, f64::min),
            max_speedup: speedups.iter().copied().fold(0.0, f64::max),
            energy_saving: 1.0 - d_energy / a_energy.max(1e-12),
        }
    }
}

/// The paper's abstract-level claims, measured on our campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Fractional reduction in data movement (paper: 0.28–0.71).
    pub movement_reduction: f64,
    /// Smallest per-stage update speedup (paper: 1.4×).
    pub min_speedup: f64,
    /// Largest per-stage update speedup (paper: 3.3×).
    pub max_speedup: f64,
    /// Fractional energy saving (paper: 0.30–0.70).
    pub energy_saving: f64,
}

impl Headline {
    /// Renders the headline as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Headline: In-situ AI (d) vs traditional (a)",
            &["metric", "measured", "paper"],
        );
        t.push_row(vec![
            "data movement reduction".into(),
            pct(self.movement_reduction),
            "28-71%".into(),
        ]);
        t.push_row(vec![
            "update speedup".into(),
            format!("{}x - {}x", f(self.min_speedup, 2), f(self.max_speedup, 2)),
            "1.4x - 3.3x".into(),
        ]);
        t.push_row(vec![
            "energy saving".into(),
            pct(self.energy_saving),
            "30-70%".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_preserves_orderings() {
        let out = run(Scale::Smoke, 5).unwrap();
        assert_eq!(out.reports.len(), 4);
        assert_eq!(out.stage_names.len(), 5);
        let a = out.of(SystemKind::Traditional);
        let b = out.of(SystemKind::CloudDiagnosis);
        let c = out.of(SystemKind::InsituDiagnosis);
        let d = out.of(SystemKind::InsituAi);
        for i in 1..5 {
            // a and b move everything; c and d move less.
            assert_eq!(a[i].uploaded_bytes, b[i].uploaded_bytes);
            assert!(c[i].uploaded_bytes <= a[i].uploaded_bytes);
            assert!(d[i].uploaded_bytes <= a[i].uploaded_bytes);
            // d's update is never slower than a's.
            assert!(d[i].update_time_s() <= a[i].update_time_s() * 1.001);
        }
        let h = out.headline();
        assert!(h.movement_reduction >= 0.0 && h.movement_reduction <= 1.0);
        assert!(h.max_speedup >= h.min_speedup);
        // Tables render.
        assert_eq!(out.table2().row_count(), 2);
        assert_eq!(out.fig25().row_count(), 20);
        assert_eq!(out.accuracy_table().row_count(), 4);
        assert_eq!(h.table().row_count(), 3);
    }
}
