//! Fig. 14 — per-layer-class performance/power ratio across batch
//! sizes: GPU CONV and FCN improve with batching; FPGA CONV is flat;
//! FPGA FCN improves only with the paper's Fig. 13 batch loop.

use crate::report::{f, Table};
use crate::Result;
use insitu_devices::{FpgaModel, GpuModel, NetworkShapes};

/// One measurement point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Batch size.
    pub batch: usize,
    /// GPU CONV-only perf/W.
    pub gpu_conv_ppw: f64,
    /// GPU FCN-only perf/W.
    pub gpu_fc_ppw: f64,
    /// FPGA CONV-only perf/W (batch-independent by Eq. 4).
    pub fpga_conv_ppw: f64,
    /// FPGA FCN perf/W without the batch loop.
    pub fpga_fc_ppw_nobatch: f64,
    /// FPGA FCN perf/W with the batch loop.
    pub fpga_fc_ppw_batch: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// Batch sweep points.
    pub points: Vec<Point>,
}

/// The batch sizes swept.
pub const BATCHES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Runs the sweep on AlexNet's layer classes in isolation.
///
/// # Errors
///
/// Infallible in practice; returns `Result` for harness uniformity.
pub fn run() -> Result<Output> {
    let full = NetworkShapes::alexnet();
    let conv_only = NetworkShapes::new(
        "alexnet-conv",
        full.layers.iter().copied().filter(|l| l.is_conv()).collect(),
    );
    let fc_only = NetworkShapes::new(
        "alexnet-fc",
        full.layers.iter().copied().filter(|l| !l.is_conv()).collect(),
    );
    let gpu = GpuModel::tx1();
    let fpga_batch = FpgaModel::vx690t();
    let fpga_nobatch = fpga_batch.with_fcn_batch_opt(false);
    let points = BATCHES
        .iter()
        .map(|&batch| Point {
            batch,
            gpu_conv_ppw: gpu.perf_per_watt(&conv_only, batch),
            gpu_fc_ppw: gpu.perf_per_watt(&fc_only, batch),
            fpga_conv_ppw: fpga_batch.perf_per_watt(&conv_only, batch),
            fpga_fc_ppw_nobatch: fpga_nobatch.perf_per_watt(&fc_only, batch),
            fpga_fc_ppw_batch: fpga_batch.perf_per_watt(&fc_only, batch),
        })
        .collect();
    Ok(Output { points })
}

impl Output {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 14: per-layer-class perf/power (img/s/W) vs batch",
            &[
                "batch",
                "GPU conv",
                "GPU fcn",
                "FPGA conv",
                "FPGA fcn",
                "FPGA fcn+batch",
            ],
        );
        for p in &self.points {
            t.push_row(vec![
                p.batch.to_string(),
                f(p.gpu_conv_ppw, 2),
                f(p.gpu_fc_ppw, 2),
                f(p.fpga_conv_ppw, 2),
                f(p.fpga_fc_ppw_nobatch, 2),
                f(p.fpga_fc_ppw_batch, 2),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_effects_match_paper() {
        let out = run().unwrap();
        let first = &out.points[0];
        let last = out.points.last().unwrap();
        // GPU improves on both layer classes.
        assert!(last.gpu_conv_ppw > first.gpu_conv_ppw);
        assert!(last.gpu_fc_ppw > 2.0 * first.gpu_fc_ppw);
        // FPGA CONV flat (Eq. 4 has no batch term).
        assert!((last.fpga_conv_ppw - first.fpga_conv_ppw).abs() / first.fpga_conv_ppw < 0.01);
        // FPGA FCN flat without the loop, improving with it.
        assert!(
            (last.fpga_fc_ppw_nobatch - first.fpga_fc_ppw_nobatch).abs()
                / first.fpga_fc_ppw_nobatch
                < 0.1
        );
        assert!(last.fpga_fc_ppw_batch > 2.0 * first.fpga_fc_ppw_batch);
        // At batch 1 the two FPGA FCN variants coincide.
        assert!(
            (first.fpga_fc_ppw_batch - first.fpga_fc_ppw_nobatch).abs()
                / first.fpga_fc_ppw_nobatch
                < 1e-9
        );
    }

    #[test]
    fn gpu_conv_beats_fpga_conv() {
        // Paper: "the overall energy-efficiency of GPU is better than
        // that of FPGA" and FPGA conv is worse than GPU conv.
        let out = run().unwrap();
        for p in &out.points {
            assert!(p.gpu_conv_ppw > p.fpga_conv_ppw, "batch {}", p.batch);
        }
    }
}
