//! Fig. 11 — inference latency and performance/power ratio across
//! batch sizes on the mobile GPU and the FPGA (AlexNet).
//!
//! Expected shape: latency grows with batch on both platforms; the
//! GPU's perf/W improves markedly with batch while the FPGA's stays
//! nearly flat.

use crate::report::{f, secs, Table};
use crate::Result;
use insitu_devices::{FpgaModel, GpuModel, NetworkShapes};

/// One batch-size measurement point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Batch size.
    pub batch: usize,
    /// GPU batch latency, seconds.
    pub gpu_latency_s: f64,
    /// GPU perf/W, images/s/W.
    pub gpu_ppw: f64,
    /// FPGA batch latency, seconds.
    pub fpga_latency_s: f64,
    /// FPGA perf/W, images/s/W.
    pub fpga_ppw: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// Batch sweep points.
    pub points: Vec<Point>,
}

/// The batch sizes swept (paper plots 1..128).
pub const BATCHES: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Runs the sweep.
///
/// # Errors
///
/// Infallible in practice; returns `Result` for harness uniformity.
pub fn run() -> Result<Output> {
    let net = NetworkShapes::alexnet();
    let gpu = GpuModel::tx1();
    // The characterization figure uses the state-of-the-art FPGA
    // design of the paper's Fig. 9, which has no FCN batch loop —
    // the batching optimization is introduced later (Fig. 13).
    let fpga = FpgaModel::vx690t().with_fcn_batch_opt(false);
    let points = BATCHES
        .iter()
        .map(|&batch| Point {
            batch,
            gpu_latency_s: gpu.batch_latency(&net, batch),
            gpu_ppw: gpu.perf_per_watt(&net, batch),
            fpga_latency_s: fpga.batch_latency(&net, batch),
            fpga_ppw: fpga.perf_per_watt(&net, batch),
        })
        .collect();
    Ok(Output { points })
}

impl Output {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 11: AlexNet latency & perf/power vs batch size",
            &["batch", "GPU latency", "GPU img/s/W", "FPGA latency", "FPGA img/s/W"],
        );
        for p in &self.points {
            t.push_row(vec![
                p.batch.to_string(),
                secs(p.gpu_latency_s),
                f(p.gpu_ppw, 2),
                secs(p.fpga_latency_s),
                f(p.fpga_ppw, 2),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let out = run().unwrap();
        assert_eq!(out.points.len(), BATCHES.len());
        // Latency grows with batch on both platforms.
        for w in out.points.windows(2) {
            assert!(w[1].gpu_latency_s > w[0].gpu_latency_s);
            assert!(w[1].fpga_latency_s > w[0].fpga_latency_s);
        }
        // GPU perf/W improves substantially; FPGA stays nearly flat.
        let first = &out.points[0];
        let last = &out.points[BATCHES.len() - 1];
        assert!(last.gpu_ppw > 1.5 * first.gpu_ppw);
        assert!(last.fpga_ppw < 1.5 * first.fpga_ppw);
        // GPU is the more energy-efficient single-task platform.
        assert!(first.gpu_ppw > first.fpga_ppw);
    }

    #[test]
    fn table_has_all_rows() {
        let out = run().unwrap();
        assert_eq!(out.table().row_count(), BATCHES.len());
    }
}
