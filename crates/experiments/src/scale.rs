//! Experiment scale control.
//!
//! Training-based experiments run at three sizes:
//!
//! * [`Scale::Smoke`] — seconds; used by the unit tests to validate
//!   wiring and result shapes.
//! * [`Scale::Fast`] — a minute or two per experiment; the default for
//!   `cargo bench` and the `repro` binary.
//! * [`Scale::Full`] — the final-numbers configuration (paper counts
//!   scaled 1:100).
//!
//! Pure-analytical experiments (device-model figures) ignore the scale.

use std::fmt;

/// How large to run a training-based experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal wiring check (unit tests).
    Smoke,
    /// Default: fast but meaningful.
    Fast,
    /// Final numbers.
    Full,
}

impl Scale {
    /// Reads `INSITU_SCALE` from the environment (`smoke`, `fast`,
    /// `full`), defaulting to `Fast`.
    pub fn from_env() -> Scale {
        match std::env::var("INSITU_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "smoke" => Scale::Smoke,
            "full" => Scale::Full,
            _ => Scale::Fast,
        }
    }

    /// Picks among the three per-scale values.
    pub fn pick<T: Copy>(&self, smoke: T, fast: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Fast => fast,
            Scale::Full => full,
        }
    }

    /// Image-count multiplier relative to the paper's thousands
    /// (paper 100k → `100 * images_per_k`).
    pub fn images_per_k(&self) -> usize {
        self.pick(1, 4, 10)
    }

    /// Epoch count for bootstrap-style training jobs.
    pub fn epochs(&self) -> usize {
        self.pick(2, 10, 16)
    }

    /// Epoch count for incremental fine-tuning jobs.
    pub fn fine_tune_epochs(&self) -> usize {
        self.pick(1, 5, 8)
    }

    /// Held-out evaluation samples.
    pub fn eval_images(&self) -> usize {
        self.pick(32, 200, 400)
    }

    /// Number of recognition classes.
    pub fn classes(&self) -> usize {
        self.pick(4, 6, 8)
    }

    /// Jigsaw permutation-set size.
    pub fn permutations(&self) -> usize {
        self.pick(4, 12, 16)
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scale::Smoke => "smoke",
            Scale::Fast => "fast",
            Scale::Full => "full",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Fast.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn knobs_grow_with_scale() {
        assert!(Scale::Smoke.images_per_k() < Scale::Fast.images_per_k());
        assert!(Scale::Fast.images_per_k() < Scale::Full.images_per_k());
        assert!(Scale::Smoke.epochs() <= Scale::Full.epochs());
    }

    #[test]
    fn display_names() {
        assert_eq!(Scale::Fast.to_string(), "fast");
    }
}
