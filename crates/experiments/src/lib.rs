//! # insitu-experiments
//!
//! The reproduction harness: one module per table/figure of the
//! paper's evaluation, each returning structured rows plus an aligned
//! text table, so `cargo bench` (or the `repro` binary) regenerates
//! the entire evaluation section.
//!
//! | module | reproduces |
//! |---|---|
//! | [`table1`] | Table I — static models on ideal vs in-situ data |
//! | [`fig5`] | Fig. 5 — training-method accuracy comparison |
//! | [`fig6`] | Fig. 6 — CONV-i locking: accuracy & time |
//! | [`fig7`] | Fig. 7 — incremental training on valuable data |
//! | [`fig11`] | Fig. 11 — latency & perf/W vs batch size |
//! | [`fig12`] | Fig. 12 — CONV/FCN runtime breakdown |
//! | [`fig14`] | Fig. 14 — batching and perf/W per layer class |
//! | [`fig15`] | Fig. 15 — GPU vs FPGA resource utilization |
//! | [`fig16`] | Fig. 16 — co-running interference |
//! | [`fig21`] | Fig. 21 — time-model batch selection speedups |
//! | [`fig22`] | Fig. 22 — NWS/WS/WSS co-running CONV runtime |
//! | [`fig23`] | Fig. 23 — end-to-end design throughput |
//! | [`endtoend`] | Table II + Fig. 25 — the Cloud comparison |
//! | [`ablations`] | design-space ablations |

#![warn(missing_docs)]

pub mod ablations;
pub mod endtoend;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod report;
pub mod scale;
pub mod table1;

pub use report::Table;
pub use scale::Scale;

/// Boxed error used across the harness (experiments aggregate errors
/// from every crate in the workspace).
pub type Error = Box<dyn std::error::Error + Send + Sync>;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
