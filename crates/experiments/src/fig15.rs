//! Fig. 15 — resource-utilization comparison between the GPU (Eq. 3)
//! and the FPGA (Eq. 4) across AlexNet's CONV layers and batch sizes.
//!
//! Expected shape: GPU utilization grows with batch (bigger data
//! matrix → more thread blocks → fuller waves); FPGA utilization is a
//! per-layer constant.

use crate::report::{pct, Table};
use crate::Result;
use insitu_devices::{FpgaModel, GpuModel, NetworkShapes};

/// Utilization of one CONV layer at one batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Layer name (`conv1`..`conv5`).
    pub layer: String,
    /// Batch size.
    pub batch: usize,
    /// GPU utilization (Eq. 3).
    pub gpu_util: f64,
    /// FPGA utilization (Eq. 4) — batch-independent.
    pub fpga_util: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// All (layer, batch) points.
    pub points: Vec<Point>,
}

/// The batch sizes swept.
pub const BATCHES: [usize; 4] = [1, 4, 16, 64];

/// Runs the sweep.
///
/// # Errors
///
/// Infallible in practice; returns `Result` for harness uniformity.
pub fn run() -> Result<Output> {
    let net = NetworkShapes::alexnet();
    let gpu = GpuModel::tx1();
    let fpga = FpgaModel::vx690t();
    let mut points = Vec::new();
    for (i, conv) in net.convs().iter().enumerate() {
        for &batch in &BATCHES {
            points.push(Point {
                layer: format!("conv{}", i + 1),
                batch,
                gpu_util: gpu.conv_utilization(conv, batch),
                fpga_util: fpga.conv_utilization(conv),
            });
        }
    }
    Ok(Output { points })
}

impl Output {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 15: CONV-layer resource utilization (GPU Eq.3 vs FPGA Eq.4)",
            &["layer", "batch", "GPU util", "FPGA util"],
        );
        for p in &self.points {
            t.push_row(vec![
                p.layer.clone(),
                p.batch.to_string(),
                pct(p.gpu_util),
                pct(p.fpga_util),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_util_grows_with_batch_fpga_constant() {
        let out = run().unwrap();
        for layer_idx in 0..5 {
            let layer_points: Vec<&Point> = out
                .points
                .iter()
                .filter(|p| p.layer == format!("conv{}", layer_idx + 1))
                .collect();
            assert_eq!(layer_points.len(), BATCHES.len());
            // GPU: trends upward with batch. Eq. 3 is a sawtooth in the
            // grid size, so allow small local dips.
            for w in layer_points.windows(2) {
                assert!(w[1].gpu_util >= w[0].gpu_util - 0.05);
            }
            assert!(
                layer_points.last().unwrap().gpu_util > layer_points[0].gpu_util
                    || layer_points[0].gpu_util > 0.95
            );
            // FPGA: identical across batches.
            for p in &layer_points {
                assert!((p.fpga_util - layer_points[0].fpga_util).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn all_utilizations_valid() {
        let out = run().unwrap();
        for p in &out.points {
            assert!(p.gpu_util > 0.0 && p.gpu_util <= 1.0);
            assert!(p.fpga_util > 0.0 && p.fpga_util <= 1.0);
        }
        assert_eq!(out.points.len(), 5 * BATCHES.len());
    }
}
