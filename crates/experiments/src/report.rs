//! Aligned-table rendering for experiment outputs.

use std::fmt;

/// A printable result table (one per reproduced figure/table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// A cell's text, if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a duration in adaptive units.
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0} s")
    } else if x >= 1.0 {
        format!("{x:.2} s")
    } else if x >= 1e-3 {
        format!("{:.2} ms", x * 1e3)
    } else {
        format!("{:.1} us", x * 1e6)
    }
}

/// Formats a byte count in adaptive units.
pub fn bytes(x: u64) -> String {
    let x = x as f64;
    if x >= 1e9 {
        format!("{:.2} GB", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} MB", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1} KB", x / 1e3)
    } else {
        format!("{x:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, 1), Some("1"));
        assert_eq!(t.cell(5, 0), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.543), "54.3%");
        assert_eq!(secs(0.0123), "12.30 ms");
        assert_eq!(secs(2.5), "2.50 s");
        assert_eq!(secs(250.0), "250 s");
        assert_eq!(bytes(1234), "1.2 KB");
        assert_eq!(bytes(12_345_678), "12.35 MB");
    }
}
