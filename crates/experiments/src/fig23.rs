//! Fig. 23 — maximum overall processing throughput of the four
//! end-to-end FPGA designs under latency requirements of 50–800 ms.
//!
//! Expected shape: NWS is flat (no batching); NWS-batch improves with
//! looser bounds; WS cannot meet 50 ms (the paper's ✗) and is lowest;
//! WSS-NWS wins at every requirement, and its 50 ms throughput already
//! beats NWS-batch's 800 ms best.

use crate::report::{f, secs, Table};
use crate::Result;
use insitu_devices::{FpgaSpec, NetworkShapes};
use insitu_fpga::{design_throughput, Design, ThroughputPoint};

/// One (design, requirement) evaluation; `None` = infeasible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Design evaluated.
    pub design: Design,
    /// Latency requirement, seconds.
    pub t_user: f64,
    /// Best feasible throughput point, if any.
    pub best: Option<ThroughputPoint>,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// All (design, requirement) points.
    pub points: Vec<Point>,
}

/// Latency requirements swept, seconds (the paper's 50–800 ms).
pub const REQUIREMENTS: [f64; 5] = [0.05, 0.1, 0.2, 0.4, 0.8];

/// Runs the sweep on AlexNet + diagnosis co-running.
///
/// # Errors
///
/// Infallible in practice; returns `Result` for harness uniformity.
pub fn run() -> Result<Output> {
    let net = NetworkShapes::alexnet();
    let spec = FpgaSpec::vx690t();
    let mut points = Vec::new();
    for design in Design::all() {
        for &t_user in &REQUIREMENTS {
            points.push(Point {
                design,
                t_user,
                best: design_throughput(design, spec, &net, t_user, 256),
            });
        }
    }
    Ok(Output { points })
}

impl Output {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 23: overall throughput (img/s) vs latency requirement",
            &["design", "T_user", "batch", "throughput"],
        );
        for p in &self.points {
            match p.best {
                Some(b) => t.push_row(vec![
                    p.design.name().into(),
                    secs(p.t_user),
                    b.batch.to_string(),
                    f(b.throughput, 1),
                ]),
                None => t.push_row(vec![
                    p.design.name().into(),
                    secs(p.t_user),
                    "-".into(),
                    "x (infeasible)".into(),
                ]),
            }
        }
        t
    }

    /// Best throughput of a design at a requirement, if feasible.
    pub fn tput(&self, design: Design, t_user: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.design == design && (p.t_user - t_user).abs() < 1e-12)
            .and_then(|p| p.best.map(|b| b.throughput))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_infeasible_at_50ms_and_capped() {
        let out = run().unwrap();
        // The paper's ✗: WS cannot meet the 50 ms requirement.
        assert!(out.tput(Design::Ws, 0.05).is_none());
        // WS is always below WSS-NWS, and its best (800 ms) stays
        // below NWS-batch's best, matching the paper's ordering of
        // maximum throughputs.
        for &t in &REQUIREMENTS[1..] {
            if let Some(ws) = out.tput(Design::Ws, t) {
                let wss = out.tput(Design::WssNws, t).unwrap();
                assert!(ws < wss, "WS {ws} vs WSS {wss} @ {t}");
            }
        }
        let ws_best = out.tput(Design::Ws, 0.8).unwrap();
        let nb_best = out.tput(Design::NwsBatch, 0.8).unwrap();
        assert!(ws_best < nb_best, "WS best {ws_best} vs NWS-batch best {nb_best}");
    }

    #[test]
    fn nws_flat_nws_batch_grows() {
        let out = run().unwrap();
        let nws_first = out.tput(Design::Nws, 0.1).unwrap();
        let nws_last = out.tput(Design::Nws, 0.8).unwrap();
        assert!((nws_last - nws_first).abs() / nws_first < 0.1);
        let nb_first = out.tput(Design::NwsBatch, 0.1).unwrap();
        let nb_last = out.tput(Design::NwsBatch, 0.8).unwrap();
        assert!(nb_last > 1.2 * nb_first);
    }

    #[test]
    fn wss_nws_dominates_everywhere() {
        let out = run().unwrap();
        for &t in &REQUIREMENTS {
            let ours = out.tput(Design::WssNws, t).expect("always feasible");
            for d in [Design::Nws, Design::NwsBatch, Design::Ws] {
                if let Some(theirs) = out.tput(d, t) {
                    assert!(ours > theirs, "{} @ {t}: {theirs} vs {ours}", d.name());
                }
            }
        }
        // Our tightest beats their loosest.
        let ours_tight = out.tput(Design::WssNws, 0.05).unwrap();
        let best_other = out.tput(Design::NwsBatch, 0.8).unwrap();
        assert!(ours_tight > best_other);
    }

    #[test]
    fn twenty_points() {
        let out = run().unwrap();
        assert_eq!(out.points.len(), 20);
        assert_eq!(out.table().row_count(), 20);
    }
}
