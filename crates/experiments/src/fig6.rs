//! Fig. 6 — accuracy and training time when fine-tuning with the
//! first *i* convolutional layers locked (`CONV-0` … `CONV-5`).
//!
//! Expected shape: accuracy is highest at CONV-0, stays close through
//! CONV-3 (conv1–3 features are general — the paper's justification
//! for sharing exactly three layers), then drops at CONV-4/5; training
//! cost falls monotonically, with CONV-3 roughly 1.7× cheaper than
//! CONV-0.

use crate::report::{f, pct, Table};
use crate::scale::Scale;
use crate::Result;
use insitu_cloud::{pretrain, PretrainConfig};
use insitu_data::{Condition, Dataset};
use insitu_nn::models::mini_alexnet;
use insitu_nn::transfer::transfer_and_freeze;
use insitu_nn::{evaluate, train, LabeledBatch, TrainConfig};
use insitu_tensor::Rng;

/// One `CONV-i` configuration's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Number of locked leading conv layers.
    pub locked: usize,
    /// Held-out accuracy after fine-tuning.
    pub accuracy: f32,
    /// Modeled training cost (multiply-accumulate ops).
    pub training_ops: u64,
    /// Measured wall-clock training seconds.
    pub wall_seconds: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// Rows for CONV-0 … CONV-5.
    pub rows: Vec<Row>,
}

impl Output {
    /// Update-cost speedup of CONV-`i` over CONV-0 (by modeled ops).
    pub fn speedup_over_conv0(&self, i: usize) -> f64 {
        let base = self.rows[0].training_ops as f64;
        base / self.rows[i].training_ops as f64
    }

    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 6: fine-tuning with locked conv prefixes",
            &["config", "accuracy", "training ops", "speedup vs CONV-0", "wall"],
        );
        for r in &self.rows {
            t.push_row(vec![
                format!("CONV-{}", r.locked),
                pct(r.accuracy as f64),
                format!("{:.2e}", r.training_ops as f64),
                format!("{}x", f(self.speedup_over_conv0(r.locked), 2)),
                format!("{:.1} s", r.wall_seconds),
            ]);
        }
        t
    }
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error on training failures.
pub fn run(scale: Scale, seed: u64) -> Result<Output> {
    let mut rng = Rng::seed_from(seed);
    let classes = scale.classes();
    // The unsupervised trunk learns on curated raw data; the
    // fine-tuning target is a (mildly) drifted in-situ distribution, so
    // a locked prefix genuinely constrains adaptation — the regime the
    // incremental-update loop lives in.
    let raw = Dataset::generate(
        200 * scale.images_per_k(),
        classes,
        &Condition::ideal(),
        &mut rng,
    )?;
    let target = Condition::with_severity(0.45)?;
    let labeled =
        Dataset::generate(60 * scale.images_per_k(), classes, &target, &mut rng)?;
    let eval = Dataset::generate(scale.eval_images(), classes, &target, &mut rng)?;
    let pre = pretrain(
        &raw,
        &PretrainConfig {
            permutations: scale.permutations(),
            epochs: scale.pick(2, 10, 16),
            batch_size: 16,
            lr: 0.015,
            threads: None,
        },
        &mut rng,
    )?;
    let cfg = TrainConfig {
        epochs: scale.pick(2, 10, 14),
        batch_size: 16,
        lr: 0.005,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for locked in 0..=5 {
        // Fresh network per configuration, transferred from the same
        // trunk; lock the first `locked` convs.
        let mut net = mini_alexnet(classes, &mut rng)?;
        transfer_and_freeze(pre.jigsaw.trunk(), &mut net, 5, locked)?;
        let report = train(
            &mut net,
            LabeledBatch::new(labeled.images(), labeled.labels())?,
            None,
            &cfg,
            &mut rng,
        )?;
        let accuracy =
            evaluate(&mut net, LabeledBatch::new(eval.images(), eval.labels())?, 32)?;
        rows.push(Row {
            locked,
            accuracy,
            training_ops: report.total_ops,
            wall_seconds: report.wall_seconds,
        });
    }
    Ok(Output { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_has_six_rows_and_monotone_cost() {
        let out = run(Scale::Smoke, 3).unwrap();
        assert_eq!(out.rows.len(), 6);
        // Modeled training cost strictly decreases with locking depth.
        for w in out.rows.windows(2) {
            assert!(w[1].training_ops < w[0].training_ops);
        }
        // Speedup of CONV-3 over CONV-0 is meaningful (paper: 1.7x).
        let s3 = out.speedup_over_conv0(3);
        assert!(s3 > 1.2 && s3 < 3.5, "CONV-3 speedup {s3}");
        assert_eq!(out.table().row_count(), 6);
    }
}
