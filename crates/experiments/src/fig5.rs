//! Fig. 5 — accuracy of the inference network under three training
//! methods, as a function of training progress:
//!
//! * trained from scratch on limited labeled data;
//! * transfer-learned from a **weak** unsupervised pre-train;
//! * transfer-learned from a **strong** unsupervised pre-train.
//!
//! The paper reports both transfer curves above scratch (+30%), with
//! the stronger pre-train on top. **Known reproduction limitation**:
//! our synthetic generative model decouples spatial context from class
//! identity — a tile's grid position is recoverable from body-mask
//! geometry alone, so the jigsaw task never needs the class textures —
//! and context-prediction features therefore do not transfer positively
//! to recognition at this scale (see EXPERIMENTS.md). The experiment
//! still demonstrates the machinery and the weak/strong pre-train
//! ordering on the jigsaw task itself.

use crate::report::{pct, Table};
use crate::scale::Scale;
use crate::Result;
use insitu_cloud::{pretrain, PretrainConfig, Pretrained};
use insitu_data::{Condition, Dataset};
use insitu_nn::models::mini_alexnet;
use insitu_nn::transfer::transfer_and_freeze;
use insitu_nn::{train, LabeledBatch, TrainConfig};
use insitu_tensor::Rng;

/// One training curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Method name.
    pub method: String,
    /// Jigsaw-task accuracy of the pre-train (0 for scratch).
    pub pretrain_accuracy: f32,
    /// Held-out accuracy after each epoch.
    pub accuracy_by_epoch: Vec<f32>,
}

impl Curve {
    /// Final held-out accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.accuracy_by_epoch.last().copied().unwrap_or(0.0)
    }
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Output {
    /// The three curves: scratch, weak transfer, strong transfer.
    pub curves: Vec<Curve>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error on training failures.
pub fn run(scale: Scale, seed: u64) -> Result<Output> {
    let mut rng = Rng::seed_from(seed);
    let classes = scale.classes();
    // Big raw data for unsupervised pre-training; limited labels for
    // the supervised inference task.
    let raw = Dataset::generate(
        300 * scale.images_per_k(),
        classes,
        &Condition::ideal(),
        &mut rng,
    )?;
    let labeled =
        Dataset::generate(25 * scale.images_per_k(), classes, &Condition::ideal(), &mut rng)?;
    let eval = Dataset::generate(scale.eval_images(), classes, &Condition::ideal(), &mut rng)?;

    // Weak pre-train: one timid epoch over a quarter of the raw data
    // (the paper's 71%-accurate network). Strong: the full budget over
    // everything (its 88% network).
    let (weak_raw, _) = raw.split_at(raw.len() / 4)?;
    let weak = pretrain(
        &weak_raw,
        &PretrainConfig {
            permutations: scale.permutations(),
            epochs: 1,
            batch_size: 16,
            lr: 0.01,
            threads: None,
        },
        &mut rng,
    )?;
    let strong = pretrain(
        &raw,
        &PretrainConfig {
            permutations: scale.permutations(),
            epochs: scale.pick(2, 12, 20),
            batch_size: 16,
            lr: 0.015,
            threads: None,
        },
        &mut rng,
    )?;

    let cfg = TrainConfig {
        epochs: scale.pick(2, 12, 18),
        batch_size: 16,
        lr: 0.005,
        // Anneal so the endgame comparison is not dominated by SGD
        // noise: the curves should separate by initialization quality.
        lr_decay: 0.85,
        ..Default::default()
    };
    let mut curves = Vec::new();

    // Every method starts from the SAME set of random initializations
    // and shuffling streams, so the curves differ only in the
    // transferred conv weights; averaging a few replicas removes the
    // SGD noise that dominates single runs at this scale.
    let replicas = scale.pick(1, 3, 3);
    let variants: [(&str, Option<&Pretrained>); 3] = [
        ("scratch", None),
        ("transfer-weak", Some(&weak)),
        ("transfer-strong", Some(&strong)),
    ];
    for (name, pre) in variants {
        let mut mean: Vec<f32> = Vec::new();
        for rep in 0..replicas {
            let mut net_rng = Rng::seed_from(seed ^ 0x0F15 ^ (rep as u64) << 16);
            let mut net = mini_alexnet(classes, &mut net_rng)?;
            if let Some(pre) = pre {
                // Copy the full conv stack from the unsupervised trunk
                // and fine-tune everything — the paper's Fig. 5 setting
                // (its CONV-0 configuration).
                transfer_and_freeze(pre.jigsaw.trunk(), &mut net, 5, 0)?;
            }
            let report = train(
                &mut net,
                LabeledBatch::new(labeled.images(), labeled.labels())?,
                Some(LabeledBatch::new(eval.images(), eval.labels())?),
                &cfg,
                &mut net_rng,
            )?;
            let curve: Vec<f32> =
                report.history.iter().filter_map(|e| e.eval_accuracy).collect();
            if mean.is_empty() {
                mean = curve;
            } else {
                for (m, c) in mean.iter_mut().zip(curve) {
                    *m += c;
                }
            }
        }
        for m in &mut mean {
            *m /= replicas as f32;
        }
        curves.push(Curve {
            method: name.into(),
            pretrain_accuracy: pre.map(pre_accuracy).unwrap_or(0.0),
            accuracy_by_epoch: mean,
        });
    }
    Ok(Output { curves })
}

fn pre_accuracy(p: &Pretrained) -> f32 {
    p.task_accuracy
}

impl Output {
    /// Renders the figure as a table (one row per epoch).
    pub fn table(&self) -> Table {
        let mut headers = vec!["epoch".to_string()];
        for c in &self.curves {
            headers.push(format!("{} (pre {})", c.method, pct(c.pretrain_accuracy as f64)));
        }
        let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new("Fig. 5: accuracy vs training method", &hdr_refs);
        let epochs = self.curves.iter().map(|c| c.accuracy_by_epoch.len()).max().unwrap_or(0);
        for e in 0..epochs {
            let mut row = vec![e.to_string()];
            for c in &self.curves {
                row.push(
                    c.accuracy_by_epoch
                        .get(e)
                        .map(|&a| pct(a as f64))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            t.push_row(row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_produces_three_curves() {
        let out = run(Scale::Smoke, 2).unwrap();
        assert_eq!(out.curves.len(), 3);
        assert_eq!(out.curves[0].method, "scratch");
        for c in &out.curves {
            assert!(!c.accuracy_by_epoch.is_empty());
        }
        // Strong pre-train must beat weak on the jigsaw task itself.
        assert!(out.curves[2].pretrain_accuracy >= out.curves[1].pretrain_accuracy);
        assert!(out.table().row_count() > 0);
    }
}
