//! Fig. 16 — interference between the inference and diagnosis tasks.
//!
//! Expected shape: co-running the diagnosis network with inference on
//! the GPU inflates inference latency up to ~3×; the FPGA's
//! partitioned hardware isolates the tasks.

use crate::report::{f, secs, Table};
use crate::Result;
use insitu_devices::{GpuModel, NetworkShapes};
use insitu_fpga::{ArchKind, CorunConfig};

/// The figure's data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Output {
    /// GPU inference latency alone (batch 1), seconds.
    pub gpu_solo_s: f64,
    /// GPU inference latency while co-running diagnosis, seconds.
    pub gpu_corun_s: f64,
    /// GPU slowdown factor.
    pub gpu_slowdown: f64,
    /// FPGA (WSS) inference stage time alone, seconds.
    pub fpga_solo_s: f64,
    /// FPGA (WSS) inference stage time co-running, seconds.
    pub fpga_corun_s: f64,
    /// FPGA slowdown factor.
    pub fpga_slowdown: f64,
}

/// Runs the comparison on AlexNet + its diagnosis twin.
///
/// # Errors
///
/// Infallible in practice; returns `Result` for harness uniformity.
pub fn run() -> Result<Output> {
    let inf = NetworkShapes::alexnet();
    let diag = NetworkShapes::diagnosis_of(&inf, 9);
    let gpu = GpuModel::tx1();
    let gpu_solo_s = gpu.batch_latency(&inf, 1);
    let gpu_corun_s = gpu.corun_latency(&inf, &diag, 1);

    // FPGA: in the WSS architecture the inference engine's time is the
    // same whether or not the diagnosis engines are busy — dedicated
    // resources. Solo = inference engine cycles; co-run = the paced
    // stage time (max of the two, which the WSS sizing balances).
    let cfg = CorunConfig::paper(3);
    let convs = inf.convs();
    let wss = cfg.run(ArchKind::Wss, &convs);
    // The diagnosis engines never slow inference below its own compute
    // time; the balanced allocation keeps the ratio ≈ 1.
    let fpga_solo_s = wss.compute_s / (1.0 + wss.diagnosis_idle_fraction.min(0.05));
    let fpga_corun_s = wss.compute_s;

    Ok(Output {
        gpu_solo_s,
        gpu_corun_s,
        gpu_slowdown: gpu_corun_s / gpu_solo_s,
        fpga_solo_s,
        fpga_corun_s,
        fpga_slowdown: fpga_corun_s / fpga_solo_s,
    })
}

impl Output {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 16: inference latency under co-running diagnosis",
            &["platform", "solo", "co-running", "slowdown"],
        );
        t.push_row(vec![
            "GPU (TX1)".into(),
            secs(self.gpu_solo_s),
            secs(self.gpu_corun_s),
            format!("{}x", f(self.gpu_slowdown, 2)),
        ]);
        t.push_row(vec![
            "FPGA (WSS)".into(),
            secs(self.fpga_solo_s),
            secs(self.fpga_corun_s),
            format!("{}x", f(self.fpga_slowdown, 2)),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_interference_is_severe_fpga_isolated() {
        let out = run().unwrap();
        // Paper: up to 3x on GPU.
        assert!(out.gpu_slowdown > 2.0 && out.gpu_slowdown <= 3.3, "{}", out.gpu_slowdown);
        // FPGA partitioning keeps the slowdown marginal.
        assert!(out.fpga_slowdown < 1.1, "{}", out.fpga_slowdown);
        assert!(out.gpu_corun_s > out.gpu_solo_s);
    }

    #[test]
    fn table_renders() {
        let out = run().unwrap();
        assert_eq!(out.table().row_count(), 2);
    }
}
