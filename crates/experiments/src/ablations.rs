//! Design-space ablations for the choices the paper motivates but does
//! not sweep:
//!
//! * **diagnosis policy** — the realizable unsupervised policies vs
//!   the oracle: upload fraction and recall of truly-mispredicted data;
//! * **share depth** — how many conv layers to share/lock in the
//!   incremental loop (generalizes Fig. 6 end-to-end);
//! * **WSS group size** — throughput across forced `WSS_Groupsize`
//!   values under the Eq. (10) DSP constraint;
//! * **permutation-set size** — jigsaw class count vs pre-train task
//!   accuracy and transfer quality.

use crate::report::{f, pct, Table};
use crate::scale::Scale;
use crate::Result;
use insitu_cloud::{build_inference, fine_tune, pretrain, DeployConfig, IncrementalConfig, PretrainConfig};
use insitu_core::{diagnose, DiagnosisPolicy};
use insitu_data::{Condition, Dataset};
use insitu_devices::{FpgaSpec, NetworkShapes};
use insitu_fpga::WssNwsPipeline;
use insitu_nn::{evaluate, LabeledBatch};
use insitu_tensor::Rng;

/// One diagnosis-policy evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Policy description.
    pub policy: String,
    /// Fraction of the stream the policy uploads.
    pub upload_fraction: f64,
    /// Recall: fraction of truly mispredicted samples flagged.
    pub recall: f64,
    /// Precision: fraction of flagged samples truly mispredicted.
    pub precision: f64,
}

/// Diagnosis-policy ablation output.
#[derive(Debug, Clone)]
pub struct PolicyOutput {
    /// One row per policy.
    pub rows: Vec<PolicyRow>,
}

impl PolicyOutput {
    /// Renders the ablation as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: diagnosis policy (vs oracle ground truth)",
            &["policy", "upload fraction", "recall", "precision"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.policy.clone(),
                pct(r.upload_fraction),
                pct(r.recall),
                pct(r.precision),
            ]);
        }
        t
    }
}

/// Runs the diagnosis-policy ablation on a drifted stream.
///
/// # Errors
///
/// Returns an error on training failures.
pub fn diagnosis_policy(scale: Scale, seed: u64) -> Result<PolicyOutput> {
    let mut rng = Rng::seed_from(seed);
    let classes = scale.classes();
    let raw = Dataset::generate(
        150 * scale.images_per_k(),
        classes,
        &Condition::ideal(),
        &mut rng,
    )?;
    let labeled =
        Dataset::generate(50 * scale.images_per_k(), classes, &Condition::ideal(), &mut rng)?;
    let stream = Dataset::generate(
        scale.pick(24, 150, 300),
        classes,
        &Condition::with_severity(0.6)?,
        &mut rng,
    )?;
    let pre = pretrain(
        &raw,
        &PretrainConfig {
            permutations: scale.permutations(),
            epochs: scale.pick(2, 10, 14),
            batch_size: 16,
            lr: 0.015,
            threads: None,
        },
        &mut rng,
    )?;
    let (mut inference, _) = build_inference(
        &pre,
        &labeled,
        &DeployConfig { epochs: scale.pick(2, 10, 14), ..Default::default() },
        &mut rng,
    )?;
    let mut jigsaw = pre.jigsaw;
    let set = pre.set;

    // Ground truth: the oracle's verdicts.
    let oracle = diagnose(
        DiagnosisPolicy::Oracle,
        &mut inference,
        &mut jigsaw,
        &set,
        &stream,
        32,
        &mut rng,
    )?;
    let truly_bad: Vec<bool> = oracle.iter().map(|v| v.valuable).collect();
    let bad_count = truly_bad.iter().filter(|&&b| b).count().max(1);

    let policies = vec![
        ("oracle".to_string(), DiagnosisPolicy::Oracle),
        ("jigsaw-probe(3)".to_string(), DiagnosisPolicy::JigsawProbe { probes: 3 }),
        (
            "jigsaw-confidence(0.5)".to_string(),
            DiagnosisPolicy::JigsawConfidence { threshold: 0.5 },
        ),
        (
            "inference-confidence(0.6)".to_string(),
            DiagnosisPolicy::InferenceConfidence { threshold: 0.6 },
        ),
        (
            "inference-confidence(0.9)".to_string(),
            DiagnosisPolicy::InferenceConfidence { threshold: 0.9 },
        ),
    ];
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let verdicts =
            diagnose(policy, &mut inference, &mut jigsaw, &set, &stream, 32, &mut rng)?;
        let flagged: Vec<bool> = verdicts.iter().map(|v| v.valuable).collect();
        let uploads = flagged.iter().filter(|&&b| b).count();
        let hits = flagged
            .iter()
            .zip(&truly_bad)
            .filter(|(&flag, &bad)| flag && bad)
            .count();
        rows.push(PolicyRow {
            policy: name,
            upload_fraction: uploads as f64 / stream.len() as f64,
            recall: hits as f64 / bad_count as f64,
            precision: if uploads == 0 { 1.0 } else { hits as f64 / uploads as f64 },
        });
    }
    Ok(PolicyOutput { rows })
}

/// One share-depth evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareDepthRow {
    /// Conv layers shared/locked during the incremental update.
    pub depth: usize,
    /// Accuracy after one drifted-stage update.
    pub accuracy: f32,
    /// Modeled update cost in ops.
    pub update_ops: u64,
}

/// Share-depth ablation output.
#[derive(Debug, Clone)]
pub struct ShareDepthOutput {
    /// One row per depth.
    pub rows: Vec<ShareDepthRow>,
}

impl ShareDepthOutput {
    /// Renders the ablation as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: shared-layer depth in the incremental loop",
            &["shared convs", "accuracy after update", "update ops", "vs depth 0"],
        );
        let base = self.rows.first().map_or(1, |r| r.update_ops).max(1);
        for r in &self.rows {
            t.push_row(vec![
                r.depth.to_string(),
                pct(r.accuracy as f64),
                format!("{:.2e}", r.update_ops as f64),
                format!("{}x", f(base as f64 / r.update_ops.max(1) as f64, 2)),
            ]);
        }
        t
    }
}

/// Runs the share-depth ablation: one drifted incremental update with
/// the first `depth` conv layers locked, for several depths.
///
/// # Errors
///
/// Returns an error on training failures.
pub fn share_depth(scale: Scale, seed: u64) -> Result<ShareDepthOutput> {
    let mut rng = Rng::seed_from(seed);
    let classes = scale.classes();
    let base_set = Dataset::generate(
        80 * scale.images_per_k(),
        classes,
        &Condition::ideal(),
        &mut rng,
    )?;
    let drifted = Dataset::generate(
        60 * scale.images_per_k(),
        classes,
        &Condition::with_severity(0.6)?,
        &mut rng,
    )?;
    let eval = Dataset::generate(
        scale.eval_images(),
        classes,
        &Condition::with_severity(0.6)?,
        &mut rng,
    )?;
    // One shared base model.
    let (base_net, _) = insitu_cloud::build_from_scratch(
        &base_set,
        scale.pick(2, 10, 14),
        16,
        0.005,
        &mut rng,
    )?;
    let base_params = {
        let mut net = base_net;
        insitu_nn::serialize::state_dict(&mut net)
    };
    let inc = IncrementalConfig { epochs: scale.fine_tune_epochs(), batch_size: 16, lr: 0.01, threads: None, holdout: None };
    let mut rows = Vec::new();
    for depth in [0usize, 1, 3, 5] {
        let mut net = insitu_nn::models::mini_alexnet(classes, &mut rng)?;
        insitu_nn::serialize::load_state_dict(&mut net, &base_params)?;
        net.freeze_first_convs(depth)?;
        let report = fine_tune(&mut net, &drifted, &inc, &mut rng)?;
        let accuracy =
            evaluate(&mut net, LabeledBatch::new(eval.images(), eval.labels())?, 32)?;
        rows.push(ShareDepthRow { depth, accuracy, update_ops: report.total_ops });
    }
    Ok(ShareDepthOutput { rows })
}

/// One WSS-group-size evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WssGroupRow {
    /// Forced `WSS_Groupsize`.
    pub group_size: usize,
    /// Steady-state throughput at batch 8, images/s (`None` =
    /// violates the DSP constraint).
    pub throughput: Option<f64>,
}

/// WSS-group ablation output.
#[derive(Debug, Clone)]
pub struct WssGroupOutput {
    /// One row per group size tried.
    pub rows: Vec<WssGroupRow>,
    /// The group size `configure` would pick.
    pub auto_pick: usize,
}

impl WssGroupOutput {
    /// Renders the ablation as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Ablation: WSS_Groupsize under Eq. 10 (auto pick = {})",
                self.auto_pick
            ),
            &["group size", "throughput (img/s)"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.group_size.to_string(),
                r.throughput.map_or("x (over budget)".into(), |v| f(v, 1)),
            ]);
        }
        t
    }
}

/// Runs the WSS group-size ablation (purely analytical).
///
/// # Errors
///
/// Infallible in practice; returns `Result` for harness uniformity.
pub fn wss_group() -> Result<WssGroupOutput> {
    let net = NetworkShapes::alexnet();
    let spec = FpgaSpec::vx690t();
    let convs = net.convs();
    let fcs = net.fcs();
    let auto = WssNwsPipeline::configure(spec, &convs, &fcs);
    let rows = (1..=8)
        .map(|group_size| WssGroupRow {
            group_size,
            throughput: WssNwsPipeline::configure_fixed_group(spec, &fcs, group_size)
                .map(|p| p.throughput(&convs, &fcs, 8)),
        })
        .collect();
    Ok(WssGroupOutput { rows, auto_pick: auto.group_size })
}

/// One permutation-set-size evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermSetRow {
    /// Jigsaw class count.
    pub permutations: usize,
    /// Accuracy on the jigsaw task itself.
    pub jigsaw_accuracy: f32,
    /// Inference accuracy after transfer + fine-tune on limited labels.
    pub transfer_accuracy: f32,
}

/// Permutation-set ablation output.
#[derive(Debug, Clone)]
pub struct PermSetOutput {
    /// One row per set size.
    pub rows: Vec<PermSetRow>,
}

impl PermSetOutput {
    /// Renders the ablation as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: jigsaw permutation-set size",
            &["permutations", "jigsaw acc", "transfer acc"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.permutations.to_string(),
                pct(r.jigsaw_accuracy as f64),
                pct(r.transfer_accuracy as f64),
            ]);
        }
        t
    }
}

/// Runs the permutation-set-size ablation.
///
/// # Errors
///
/// Returns an error on training failures.
pub fn permutation_set(scale: Scale, seed: u64) -> Result<PermSetOutput> {
    let mut rng = Rng::seed_from(seed);
    let classes = scale.classes();
    let raw = Dataset::generate(
        150 * scale.images_per_k(),
        classes,
        &Condition::ideal(),
        &mut rng,
    )?;
    let labeled =
        Dataset::generate(40 * scale.images_per_k(), classes, &Condition::ideal(), &mut rng)?;
    let eval =
        Dataset::generate(scale.eval_images(), classes, &Condition::ideal(), &mut rng)?;
    let mut rows = Vec::new();
    for permutations in [4usize, 8, 16] {
        let pre = pretrain(
            &raw,
            &PretrainConfig {
                permutations,
                epochs: scale.pick(2, 10, 14),
                batch_size: 16,
                lr: 0.015,
                threads: None,
            },
            &mut rng,
        )?;
        let (mut net, _) = build_inference(
            &pre,
            &labeled,
            &DeployConfig { epochs: scale.pick(2, 10, 14), ..Default::default() },
            &mut rng,
        )?;
        let transfer_accuracy =
            evaluate(&mut net, LabeledBatch::new(eval.images(), eval.labels())?, 32)?;
        rows.push(PermSetRow {
            permutations,
            jigsaw_accuracy: pre.task_accuracy,
            transfer_accuracy,
        });
    }
    Ok(PermSetOutput { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ablation_smoke() {
        let out = diagnosis_policy(Scale::Smoke, 7).unwrap();
        assert_eq!(out.rows.len(), 5);
        let oracle = &out.rows[0];
        assert!((oracle.recall - 1.0).abs() < 1e-9);
        assert!((oracle.precision - 1.0).abs() < 1e-9);
        for r in &out.rows {
            assert!((0.0..=1.0).contains(&r.upload_fraction));
            assert!((0.0..=1.0).contains(&r.recall));
            assert!((0.0..=1.0).contains(&r.precision));
        }
    }

    #[test]
    fn share_depth_smoke_cost_monotone() {
        let out = share_depth(Scale::Smoke, 8).unwrap();
        assert_eq!(out.rows.len(), 4);
        for w in out.rows.windows(2) {
            assert!(w[1].update_ops < w[0].update_ops);
        }
    }

    #[test]
    fn wss_group_has_an_interior_optimum_or_boundary() {
        let out = wss_group().unwrap();
        assert!(out.auto_pick >= 1);
        // Auto pick must be at least as good as every feasible forced pick.
        let auto_tput = out
            .rows
            .iter()
            .find(|r| r.group_size == out.auto_pick)
            .and_then(|r| r.throughput)
            .expect("auto pick is feasible");
        for r in &out.rows {
            if let Some(t) = r.throughput {
                assert!(auto_tput >= t * 0.999, "group {} beats auto", r.group_size);
            }
        }
        // Large groups eventually violate the DSP constraint.
        assert!(out.rows.iter().any(|r| r.throughput.is_none()));
    }

    #[test]
    fn permutation_set_smoke() {
        let out = permutation_set(Scale::Smoke, 9).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.table().row_count(), 3);
    }
}
