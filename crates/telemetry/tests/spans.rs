//! Span nesting, thread attribution, and exporter round-trips.
//!
//! All tests share one process-wide telemetry state, so everything
//! lives in a single test function with sequential phases.

use insitu_telemetry as telemetry;
use insitu_telemetry::json::Value;

#[test]
fn nesting_threads_and_exporters() {
    // --- Phase 1: disabled telemetry records exactly nothing. --------
    telemetry::set_enabled(false);
    telemetry::reset();
    {
        let _a = telemetry::span("p1.a");
        telemetry::counter_add("p1.c", "", 1);
        telemetry::instant("p1.mark");
    }
    let snap = telemetry::snapshot();
    assert!(snap.is_empty(), "disabled telemetry recorded events: {snap:?}");

    // --- Phase 2: nesting depth and labels. ---------------------------
    telemetry::set_enabled(true);
    telemetry::reset();
    {
        let _outer = telemetry::span("p2.outer");
        {
            let _mid = telemetry::span_with("p2.mid", || "first".into());
            let _leaf = telemetry::span("p2.leaf");
        }
        {
            let _mid = telemetry::span_with("p2.mid", || "second".into());
        }
        telemetry::instant_with("p2.mark", || "v3".into());
    }
    let snap = telemetry::snapshot();
    let find = |name: &str, label: &str| {
        snap.spans
            .iter()
            .find(|s| s.name == name && s.label == label)
            .unwrap_or_else(|| panic!("missing span {name}[{label}]"))
    };
    let outer = find("p2.outer", "");
    let mid1 = find("p2.mid", "first");
    let mid2 = find("p2.mid", "second");
    let leaf = find("p2.leaf", "");
    let mark = find("p2.mark", "v3");
    assert_eq!(outer.depth, 0);
    assert_eq!(mid1.depth, 1);
    assert_eq!(mid2.depth, 1);
    assert_eq!(leaf.depth, 2);
    assert!(mark.instant && mark.dur_ns == 0);
    // Depth restored after the nested block: the instant fired inside
    // `outer` only.
    assert_eq!(mark.depth, 1);
    // Same thread throughout, and children timed inside their parent.
    for s in [mid1, mid2, leaf] {
        assert_eq!(s.tid, outer.tid);
        assert!(s.ts_ns >= outer.ts_ns);
        assert!(s.ts_ns + s.dur_ns <= outer.ts_ns + outer.dur_ns);
    }
    assert!(mid1.ts_ns + mid1.dur_ns <= mid2.ts_ns, "siblings ordered");
    // Span closes fed the aggregate counters: two `p2.mid` labels.
    assert_eq!(snap.counter("p2.mid", "first").unwrap().calls, 1);
    assert_eq!(snap.counter("p2.mid", "second").unwrap().calls, 1);
    // The summary nests mid under outer.
    let summary = snap.summary();
    assert!(summary.contains("p2.outer"), "{summary}");
    assert!(summary.contains("  p2.mid"), "{summary}");

    // --- Phase 3: thread attribution. ---------------------------------
    telemetry::reset();
    let spawn = |tag: &'static str| {
        std::thread::Builder::new()
            .name(format!("spans-{tag}"))
            .spawn(move || {
                let _s = telemetry::span_with("p3.work", || tag.into());
                telemetry::counter_add("p3.done", tag, 1);
            })
            .expect("spawn")
    };
    let (t1, t2) = (spawn("one"), spawn("two"));
    t1.join().unwrap();
    t2.join().unwrap();
    {
        let _s = telemetry::span_with("p3.work", || "main".into());
    }
    let snap = telemetry::snapshot();
    let tids: std::collections::BTreeSet<u32> =
        snap.spans.iter().filter(|s| s.name == "p3.work").map(|s| s.tid).collect();
    assert_eq!(tids.len(), 3, "three distinct threads attributed: {snap:?}");
    let one = snap.spans.iter().find(|s| s.label == "one").unwrap();
    assert_eq!(one.thread, "spans-one");
    assert_eq!(snap.counter("p3.done", "one").unwrap().calls, 1);
    assert_eq!(snap.counter("p3.done", "two").unwrap().calls, 1);

    // --- Phase 4: Chrome trace round-trips through the parser. --------
    let json = snap.chrome_trace_json();
    let doc = telemetry::json::parse(&json).expect("exporter emits valid JSON");
    let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    // 3 spans + one thread_name metadata record per thread.
    assert_eq!(events.len(), 3 + tids.len());
    for ev in events {
        assert!(ev.get("name").and_then(Value::as_str).is_some());
        let ph = ev.get("ph").and_then(Value::as_str).unwrap();
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        if ph == "X" {
            assert!(ev.get("ts").and_then(Value::as_f64).is_some());
            assert!(ev.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
            assert_eq!(ev.get("cat").and_then(Value::as_str), Some("p3"));
        }
    }

    // --- Phase 5: reset clears, disable stops. ------------------------
    telemetry::reset();
    assert!(telemetry::snapshot().is_empty());
    telemetry::set_enabled(false);
    assert!(!telemetry::enabled());
}
