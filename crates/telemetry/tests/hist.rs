//! Property tests for the log-bucketed histogram layer.
//!
//! Pins the contracts the closed-loop observability tier leans on:
//! bucket bounds actually contain their values (and tile the `u64`
//! axis), merge is associative and commutative (so any per-thread
//! split of a sample multiset folds to the same histogram),
//! percentiles are monotone in the quantile and bracketed by
//! `[min, max]`, and registry snapshots are **bitwise stable** when
//! the same samples are recorded from 1, 2 or 4 threads.

use insitu_telemetry::hist::{bucket_bounds, Histogram, BUCKETS, LINEAR_BUCKETS, SUB_BUCKETS};
use insitu_telemetry::{self as telemetry};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that toggle the global telemetry registry.
static GATE: Mutex<()> = Mutex::new(());

/// A spread of magnitudes from 0 to near `u64::MAX`, seeded.
fn samples(len: usize, seed: u64) -> Vec<u64> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        // SplitMix64 step: deterministic, full-period.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| {
            let raw = next();
            match raw % 4 {
                0 => raw % 16,                    // linear range
                1 => raw % 100_000,               // small octaves
                2 => raw % 10_000_000_000,        // ns-scale latencies
                _ => raw,                         // full range
            }
        })
        .collect()
}

fn build(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn values_land_within_their_bucket(seed in 0u64..5000) {
        for v in samples(64, seed) {
            let h = build(&[v]);
            let (lo, hi, c) = h.nonzero_buckets().next().expect("one bucket");
            prop_assert_eq!(c, 1);
            prop_assert!(lo <= v && v <= hi, "{} outside [{}, {}]", v, lo, hi);
            // Relative bucket width stays under 1/SUB_BUCKETS above the
            // linear range (exact below it).
            if v >= LINEAR_BUCKETS as u64 {
                let width = hi - lo + 1;
                prop_assert!(
                    (width as f64) <= lo as f64 / SUB_BUCKETS as f64 + 1.0,
                    "bucket [{}, {}] too wide for {}", lo, hi, v
                );
            } else {
                prop_assert_eq!(lo, hi);
            }
        }
    }

    #[test]
    fn merge_matches_whole_and_commutes(n in 1usize..200, seed in 0u64..5000, cut in 0usize..200) {
        let vals = samples(n, seed);
        let cut = cut % vals.len();
        let whole = build(&vals);
        let (left, right) = (build(&vals[..cut]), build(&vals[cut..]));

        let mut lr = left.clone();
        lr.merge(&right);
        prop_assert_eq!(&lr, &whole);

        let mut rl = right.clone();
        rl.merge(&left);
        prop_assert_eq!(&rl, &whole);
    }

    #[test]
    fn merge_is_associative(n in 3usize..150, seed in 0u64..5000) {
        let vals = samples(n, seed);
        let third = vals.len() / 3;
        let (a, b, c) =
            (build(&vals[..third]), build(&vals[third..2 * third]), build(&vals[2 * third..]));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn percentiles_are_monotone_and_bracketed(n in 1usize..300, seed in 0u64..5000) {
        let vals = samples(n, seed);
        let h = build(&vals);
        let mut prev = 0u64;
        for i in 0..=20 {
            let p = h.percentile(i as f64 / 20.0);
            prop_assert!(p >= prev, "percentile decreased: {} -> {}", prev, p);
            prop_assert!(p >= h.min() && p <= h.max(), "{} outside [{}, {}]", p, h.min(), h.max());
            prev = p;
        }
        prop_assert_eq!(h.percentile(1.0), h.max());
        prop_assert_eq!(h.count(), n as u64);
        prop_assert_eq!(h.sum(), vals.iter().fold(0u64, |acc, &v| acc.saturating_add(v)));
    }

    #[test]
    fn snapshots_are_bitwise_stable_across_thread_counts(n in 1usize..200, seed in 0u64..2000) {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let vals = samples(n, seed);
        let expected = build(&vals);

        let mut merged: Vec<Histogram> = Vec::new();
        for threads in [1usize, 2, 4] {
            telemetry::set_enabled(true);
            telemetry::reset();
            // Deal samples round-robin across `threads` recording threads.
            std::thread::scope(|s| {
                for t in 0..threads {
                    let shard: Vec<u64> =
                        vals.iter().copied().skip(t).step_by(threads).collect();
                    s.spawn(move || {
                        for v in shard {
                            telemetry::hist_record("prop.stable", "", v);
                        }
                    });
                }
            });
            let snap = telemetry::snapshot();
            telemetry::set_enabled(false);
            telemetry::reset();
            merged.push(snap.hist("prop.stable", "").expect("histogram recorded").hist.clone());
        }
        prop_assert_eq!(&merged[0], &expected);
        prop_assert_eq!(&merged[1], &expected);
        prop_assert_eq!(&merged[2], &expected);
    }
}

#[test]
fn bucket_bounds_tile_the_axis() {
    let mut expect = 0u64;
    for i in 0..BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, expect, "bucket {i}");
        expect = hi.wrapping_add(1);
    }
    assert_eq!(expect, 0, "layout must end exactly at u64::MAX");
}
