//! Log-bucketed latency/size histograms (HdrHistogram-style).
//!
//! A [`Histogram`] counts `u64` samples in a fixed log-linear bucket
//! layout: values below [`LINEAR_BUCKETS`] land in exact unit-wide
//! buckets; every larger value lands in its power-of-two octave, which
//! is split into [`SUB_BUCKETS`] equal sub-buckets. The layout covers
//! the full `u64` range in [`BUCKETS`] cells (~4 KB), so recording is
//! one array increment — no allocation, no rehashing — and the
//! relative quantization error is bounded by `1 / SUB_BUCKETS`
//! (12.5%): plenty for latency percentiles, small enough to diff
//! across runs.
//!
//! Recording happens into **per-thread** histograms owned by the
//! registry (the same uncontended-buffer scheme spans use — the
//! recording thread touches only its own cells, so there is no
//! cross-thread synchronization on the hot path), and a snapshot
//! [`Histogram::merge`]s them. Merging is a bucket-wise `u64` add:
//! associative, commutative, and bitwise deterministic regardless of
//! how samples were split across threads — the property the
//! `hist` test suite pins down.

/// Number of exact unit-wide buckets at the bottom of the layout
/// (values `0..LINEAR_BUCKETS` are counted exactly).
pub const LINEAR_BUCKETS: usize = 16;

/// Sub-buckets per power-of-two octave above the linear range.
pub const SUB_BUCKETS: usize = 8;

/// log2([`LINEAR_BUCKETS`]): the first octave index with sub-buckets.
const FIRST_OCTAVE: usize = 4;

/// log2([`SUB_BUCKETS`]): bits of sub-bucket resolution per octave.
const SUB_SHIFT: usize = 3;

/// Total bucket count: the linear range plus every octave up to
/// `2^63`, each split [`SUB_BUCKETS`] ways.
pub const BUCKETS: usize = LINEAR_BUCKETS + (64 - FIRST_OCTAVE) * SUB_BUCKETS;

/// Index of the bucket `v` lands in.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= FIRST_OCTAVE
        let sub = ((v >> (msb - SUB_SHIFT)) & (SUB_BUCKETS as u64 - 1)) as usize;
        LINEAR_BUCKETS + (msb - FIRST_OCTAVE) * SUB_BUCKETS + sub
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `i`.
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i < LINEAR_BUCKETS {
        (i as u64, i as u64)
    } else {
        let octave = (i - LINEAR_BUCKETS) / SUB_BUCKETS + FIRST_OCTAVE;
        let sub = ((i - LINEAR_BUCKETS) % SUB_BUCKETS) as u64;
        let width = 1u64 << (octave - SUB_SHIFT);
        let lower = (1u64 << octave) + sub * width;
        (lower, lower + (width - 1))
    }
}

/// A mergeable log-bucketed histogram of `u64` samples.
///
/// Tracks exact `count`, saturating `sum`, exact `min`/`max`, and the
/// log-linear bucket counts percentiles are read from. Percentiles
/// report the **upper bound** of the bucket holding the requested
/// rank, clamped to the observed `[min, max]` — deterministic for a
/// given multiset of samples, monotone in the quantile, and within
/// one bucket width (≤ 12.5% relative) of the exact order statistic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64]>,
    count: u64,
    sum: u64,
    /// `u64::MAX` sentinel while empty (accessor reports 0).
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (bucket-wise add). Associative and
    /// commutative: any merge order over any per-thread split of the
    /// same samples yields the same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 while empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 while empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded samples (0 while empty; from the saturating
    /// sum, so exact until `sum` saturates).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the rank-`ceil(q·count)` sample, clamped to
    /// the observed `[min, max]`. Returns 0 while empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = bucket_bounds(i);
                return upper.min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Iterates the non-empty buckets as `(lower, upper, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let (lo, hi) = bucket_bounds(i);
            (lo, hi, c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..LINEAR_BUCKETS as u64 {
            h.record(v);
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        // Consecutive buckets tile the axis with no gaps or overlaps.
        let mut expect = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect, "bucket {i} lower bound");
            assert!(hi >= lo);
            expect = hi.wrapping_add(1);
        }
        assert_eq!(expect, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn every_value_lands_within_its_bucket_bounds() {
        for &v in &[0, 1, 15, 16, 17, 100, 1_000_003, u64::MAX / 3, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn percentile_bounds_and_extremes() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 10);
        assert_eq!(h.percentile(1.0), 1000);
        let p50 = h.percentile(0.5);
        // Within one bucket of the exact median (30).
        let (lo, hi) = bucket_bounds(bucket_index(30));
        assert!(p50 >= lo && p50 <= hi.max(30), "p50 {p50}");
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn merge_is_add() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..100u64 {
            whole.record(v * 7);
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn saturating_sum() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
