//! A minimal JSON reader, used to validate the exporters' output
//! (round-tripping the Chrome trace in tests) without external crates.
//!
//! Supports the full JSON grammar the exporters emit: objects, arrays,
//! strings with escapes (including `\uXXXX`), numbers, booleans and
//! null. Numbers are parsed as `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The contained string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The contained array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError { at: self.pos, reason: reason.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are replaced; the exporters
                            // never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction from &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { at: start, reason: format!("bad number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b").and_then(Value::as_str), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Obj(BTreeMap::new())));
    }

    #[test]
    fn parses_escapes() {
        let v = parse("\"a\\\"b\\\\c\\nd\\u0041e\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAe"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        let e = parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte 0"));
    }

    #[test]
    fn parses_unicode_passthrough() {
        let v = parse("\"héllo ☃\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ☃"));
    }
}
