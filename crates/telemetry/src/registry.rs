//! Per-thread event buffers behind a process-wide registry.
//!
//! Each thread that records telemetry owns a [`ThreadBuf`] behind its
//! own mutex; the thread-local handle makes recording a push under an
//! uncontended lock, and the global registry keeps a second `Arc` to
//! every buffer so a snapshot from any thread can see all of them —
//! including live worker threads that never "finish" their buffers.

use crate::hist::Histogram;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Cap on buffered raw events per thread (~4 MB worst case). Aggregated
/// counters keep exact totals past the cap; overflowing raw events are
/// counted in `dropped` instead of buffered.
pub(crate) const MAX_EVENTS_PER_THREAD: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<ThreadBuf>>>>> = OnceLock::new();
/// Monotonic session-epoch id, bumped by [`advance_epoch`] so
/// back-to-back sessions in one process can prove their snapshots
/// came from disjoint recording windows.
static EPOCH_ID: AtomicU64 = AtomicU64::new(0);

pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

pub(crate) fn set_enabled(on: bool) {
    if on {
        // Anchor the time origin no later than the first recorded event.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide time origin all span timestamps are relative to.
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// One recorded span or instant.
pub(crate) struct Event {
    pub name: &'static str,
    pub label: Option<Box<str>>,
    /// Start time, nanoseconds since [`epoch`].
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Nesting depth at open (0 = top level on its thread).
    pub depth: u16,
    pub instant: bool,
}

/// Aggregated counter cell.
#[derive(Clone, Copy, Default)]
pub(crate) struct Counter {
    pub calls: u64,
    pub total: u64,
    pub max: u64,
}

impl Counter {
    fn add(&mut self, value: u64) {
        self.calls += 1;
        self.total += value;
        self.max = self.max.max(value);
    }
}

/// All telemetry recorded by one thread.
pub(crate) struct ThreadBuf {
    pub tid: u32,
    pub thread_name: String,
    pub events: Vec<Event>,
    pub counters: HashMap<(&'static str, Box<str>), Counter>,
    pub hists: HashMap<(&'static str, Box<str>), Histogram>,
    pub dropped: u64,
}

thread_local! {
    /// This thread's buffer handle (also registered globally).
    static LOCAL: RefCell<Option<Arc<Mutex<ThreadBuf>>>> = const { RefCell::new(None) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// Opens a span: returns the current depth and increments it.
pub(crate) fn push_depth() -> u16 {
    DEPTH.with(|d| {
        let cur = d.get();
        d.set(cur.saturating_add(1));
        cur
    })
}

/// Restores the depth a closing span saved at open.
pub(crate) fn set_depth(depth: u16) {
    DEPTH.with(|d| d.set(depth));
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<ThreadBuf>>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn local() -> Arc<Mutex<ThreadBuf>> {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(buf) = slot.as_ref() {
            return Arc::clone(buf);
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let thread_name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{tid}"), str::to_owned);
        let buf = Arc::new(Mutex::new(ThreadBuf {
            tid,
            thread_name,
            events: Vec::new(),
            counters: HashMap::new(),
            hists: HashMap::new(),
            dropped: 0,
        }));
        lock(registry()).push(Arc::clone(&buf));
        *slot = Some(Arc::clone(&buf));
        buf
    })
}

/// Records a completed span: the raw event (subject to the per-thread
/// cap) plus the exact `(name, label)` aggregate.
pub(crate) fn record_span_close(
    name: &'static str,
    label: Option<Box<str>>,
    ts_ns: u64,
    dur_ns: u64,
    depth: u16,
) {
    let buf = local();
    let mut b = lock(&buf);
    let key_label: Box<str> = label.as_deref().unwrap_or("").into();
    b.counters.entry((name, key_label)).or_default().add(dur_ns);
    // Every span also feeds the unlabelled duration histogram for its
    // name, so per-stage/per-kernel latency distributions come for
    // free wherever a span already exists.
    b.hists.entry((name, Box::from(""))).or_default().record(dur_ns);
    if b.events.len() >= MAX_EVENTS_PER_THREAD {
        b.dropped += 1;
    } else {
        b.events.push(Event { name, label, ts_ns, dur_ns, depth, instant: false });
    }
}

/// Records a zero-duration point event at the current nesting depth.
pub(crate) fn record_instant(name: &'static str, label: Option<Box<str>>) {
    let ts_ns = u64::try_from(Instant::now().saturating_duration_since(epoch()).as_nanos())
        .unwrap_or(u64::MAX);
    let depth = DEPTH.with(Cell::get);
    let buf = local();
    let mut b = lock(&buf);
    if b.events.len() >= MAX_EVENTS_PER_THREAD {
        b.dropped += 1;
    } else {
        b.events.push(Event { name, label, ts_ns, dur_ns: 0, depth, instant: true });
    }
}

/// Adds to an aggregate counter.
pub(crate) fn record_counter(name: &'static str, label: &str, value: u64) {
    let buf = local();
    let mut b = lock(&buf);
    b.counters.entry((name, Box::from(label))).or_default().add(value);
}

/// Records one sample into the `(name, label)` histogram.
pub(crate) fn record_hist(name: &'static str, label: &str, value: u64) {
    let buf = local();
    let mut b = lock(&buf);
    b.hists.entry((name, Box::from(label))).or_default().record(value);
}

/// Runs `f` over every registered thread buffer, locking each in turn.
pub(crate) fn for_each_buf(mut f: impl FnMut(&ThreadBuf)) {
    let bufs: Vec<Arc<Mutex<ThreadBuf>>> = lock(registry()).iter().map(Arc::clone).collect();
    for buf in bufs {
        f(&lock(&buf));
    }
}

/// Clears every thread's recorded data (registrations are kept).
pub(crate) fn reset() {
    let bufs: Vec<Arc<Mutex<ThreadBuf>>> = lock(registry()).iter().map(Arc::clone).collect();
    for buf in bufs {
        let mut b = lock(&buf);
        b.events.clear();
        b.counters.clear();
        b.hists.clear();
        b.dropped = 0;
    }
}

/// The current session-epoch id (see [`advance_epoch`]).
pub(crate) fn epoch_id() -> u64 {
    EPOCH_ID.load(Ordering::Relaxed)
}

/// Clears all recorded data and bumps the session-epoch id. Sessions
/// call this at start so consecutive runs in one process never merge
/// each other's counters or histograms.
pub(crate) fn advance_epoch() -> u64 {
    reset();
    EPOCH_ID.fetch_add(1, Ordering::Relaxed) + 1
}
