//! # insitu-telemetry
//!
//! Structured tracing and per-kernel counters for the In-situ AI
//! reproduction: the measurement substrate behind the paper's
//! time/resource characterizations (its Eqs. 1–14 and Figs. 5/6/25)
//! applied to the *reproduction itself* — where does a streaming
//! session spend its time, how busy is the kernel worker pool, when
//! does the node hot-swap a model.
//!
//! ## Model
//!
//! * **Spans** — RAII guards ([`span`], [`span_with`]) that record a
//!   named, optionally labelled interval on the current thread, with
//!   nesting depth. Dropping the guard closes the span.
//! * **Instants** — zero-duration point events ([`instant`],
//!   [`instant_with`]) such as a model hot-swap.
//! * **Counters** — named accumulators ([`counter_add`]) tracking
//!   `calls`, `total` and `max` of the added values. Every span close
//!   also feeds the counter keyed by its `(name, label)`, so aggregate
//!   call counts and total nanoseconds stay exact even if the raw
//!   event buffer saturates.
//!
//! Events land in per-thread buffers owned by a process-wide registry;
//! recording locks only the recording thread's own (uncontended) mutex.
//! [`snapshot`] merges every thread's data into a [`TelemetrySnapshot`],
//! which renders as a hierarchical text [`TelemetrySnapshot::summary`],
//! as Chrome `trace_event` JSON
//! ([`TelemetrySnapshot::chrome_trace_json`], loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)), or as a
//! machine-readable report ([`TelemetrySnapshot::to_json`]).
//!
//! ## Cost
//!
//! Telemetry is **off by default**. While disabled, every entry point
//! reduces to one relaxed atomic load — no allocation, no locking, no
//! clock read — so instrumented hot paths (the GEMM kernels, the worker
//! pool) run at their uninstrumented speed. Enable it programmatically
//! with [`set_enabled`] or from the environment with [`init_from_env`]
//! (`INSITU_TRACE=1`).
//!
//! ## Example
//!
//! ```
//! use insitu_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! telemetry::reset();
//! {
//!     let _outer = telemetry::span("demo.outer");
//!     let _inner = telemetry::span_with("demo.inner", || "first".to_string());
//!     telemetry::counter_add("demo.bytes", "", 128);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.spans.len(), 2);
//! assert_eq!(snap.counter("demo.bytes", "").unwrap().total, 128);
//! telemetry::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod hist;
pub mod json;
mod registry;
mod report;

pub use hist::Histogram;
pub use report::{CounterTotal, HistogramTotal, SpanRecord, TelemetrySnapshot};

use std::time::Instant;

/// Turns recording on or off for the whole process. Disabling does not
/// discard already-recorded data (use [`reset`] for that).
pub fn set_enabled(on: bool) {
    registry::set_enabled(on);
}

/// Whether telemetry is currently recording.
pub fn enabled() -> bool {
    registry::enabled()
}

/// Enables telemetry if the `INSITU_TRACE` environment variable is set
/// to anything other than `0`, `false` or the empty string. Returns the
/// resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("INSITU_TRACE") {
        let v = v.trim();
        if !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false") {
            set_enabled(true);
        }
    }
    enabled()
}

/// Discards every recorded span, instant, counter and histogram on
/// every thread. The enabled state is unchanged.
pub fn reset() {
    registry::reset();
}

/// Clears all recorded data and bumps the session-epoch id, returning
/// the new id. Runtimes call this when a session starts so back-to-back
/// sessions in one process never merge each other's telemetry;
/// [`TelemetrySnapshot::epoch`] records which window a snapshot saw.
pub fn advance_epoch() -> u64 {
    registry::advance_epoch()
}

/// The current session-epoch id (0 until the first [`advance_epoch`]).
pub fn epoch_id() -> u64 {
    registry::epoch_id()
}

/// Merges every thread's recorded data into one snapshot. The recorded
/// data is left in place (non-destructive), so snapshots can be taken
/// mid-run; call [`reset`] to start a fresh window.
pub fn snapshot() -> TelemetrySnapshot {
    report::capture()
}

/// An open span; dropping it records the interval. Obtain via [`span`]
/// or [`span_with`]. Inert (a `None` payload) while telemetry is
/// disabled.
#[must_use = "a span records its interval when dropped"]
#[derive(Debug)]
pub struct Span(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    label: Option<Box<str>>,
    start: Instant,
    ts_ns: u64,
    depth: u16,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            registry::set_depth(s.depth);
            let dur_ns = u64::try_from(s.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            registry::record_span_close(s.name, s.label, s.ts_ns, dur_ns, s.depth);
        }
    }
}

/// Opens an unlabelled span named `name`. Returns an inert guard while
/// telemetry is disabled.
pub fn span(name: &'static str) -> Span {
    open_span(name, None)
}

/// Opens a span with a lazily-built label (e.g. a kernel shape). The
/// closure runs only while telemetry is enabled, so formatting costs
/// nothing on the disabled path.
pub fn span_with<F: FnOnce() -> String>(name: &'static str, label: F) -> Span {
    if !registry::enabled() {
        return Span(None);
    }
    open_span(name, Some(label().into_boxed_str()))
}

fn open_span(name: &'static str, label: Option<Box<str>>) -> Span {
    if !registry::enabled() {
        return Span(None);
    }
    let epoch = registry::epoch();
    let start = Instant::now();
    let ts_ns = u64::try_from(start.saturating_duration_since(epoch).as_nanos())
        .unwrap_or(u64::MAX);
    let depth = registry::push_depth();
    Span(Some(ActiveSpan { name, label, start, ts_ns, depth }))
}

/// Records a zero-duration point event (e.g. "model swapped").
pub fn instant(name: &'static str) {
    if registry::enabled() {
        registry::record_instant(name, None);
    }
}

/// Records a labelled point event; the label closure runs only while
/// telemetry is enabled.
pub fn instant_with<F: FnOnce() -> String>(name: &'static str, label: F) {
    if registry::enabled() {
        registry::record_instant(name, Some(label().into_boxed_str()));
    }
}

/// Adds `value` to the counter keyed by `(name, label)`: bumps `calls`,
/// adds to `total`, and raises `max` if `value` exceeds it. Use an
/// empty label for scalar process-wide counters.
pub fn counter_add(name: &'static str, label: &str, value: u64) {
    if registry::enabled() {
        registry::record_counter(name, label, value);
    }
}

/// Records one sample into the log-bucketed histogram keyed by
/// `(name, label)` — latency in nanoseconds, sizes in bytes, any `u64`
/// distribution worth percentiles. Recording is a bucket increment in
/// this thread's own buffer; while telemetry is disabled this is a
/// single relaxed atomic load. Spans also auto-feed the unlabelled
/// histogram for their name on close, so explicit calls are only
/// needed for non-span distributions (per-image latency, byte sizes).
pub fn hist_record(name: &'static str, label: &str, value: u64) {
    if registry::enabled() {
        registry::record_hist(name, label, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle the global enabled flag.
    static GATE: Mutex<()> = Mutex::new(());

    fn with_telemetry(f: impl FnOnce()) {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        f();
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        {
            let _s = span("off.span");
            let _t = span_with("off.labelled", || "x".into());
            counter_add("off.counter", "", 5);
            instant("off.instant");
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty(), "spans recorded while disabled");
        assert!(snap.counters.is_empty(), "counters recorded while disabled");
    }

    #[test]
    fn span_close_feeds_counter() {
        with_telemetry(|| {
            for _ in 0..3 {
                let _s = span_with("t.kernel", || "2x2".into());
            }
            let snap = snapshot();
            let c = snap.counter("t.kernel", "2x2").expect("span counter");
            assert_eq!(c.calls, 3);
            assert_eq!(snap.spans.len(), 3);
        });
    }

    #[test]
    fn counter_tracks_calls_total_max() {
        with_telemetry(|| {
            counter_add("t.bytes", "gemm", 10);
            counter_add("t.bytes", "gemm", 30);
            counter_add("t.bytes", "gemm", 20);
            let snap = snapshot();
            let c = snap.counter("t.bytes", "gemm").unwrap();
            assert_eq!((c.calls, c.total, c.max), (3, 60, 30));
        });
    }

    #[test]
    fn hist_record_and_span_autofeed() {
        with_telemetry(|| {
            hist_record("t.lat", "f32", 100);
            hist_record("t.lat", "f32", 900);
            {
                let _s = span("t.spanned");
            }
            let snap = snapshot();
            let h = snap.hist("t.lat", "f32").expect("explicit histogram");
            assert_eq!(h.hist.count(), 2);
            assert_eq!(h.max, 900);
            // Span close auto-feeds the unlabelled histogram for its name.
            let auto = snap.hist("t.spanned", "").expect("span-fed histogram");
            assert_eq!(auto.hist.count(), 1);
        });
    }

    #[test]
    fn epoch_advances_and_clears() {
        with_telemetry(|| {
            counter_add("t.epoch", "", 1);
            hist_record("t.epoch.h", "", 1);
            let before = epoch_id();
            let id = advance_epoch();
            assert_eq!(id, before + 1);
            assert_eq!(epoch_id(), id);
            let snap = snapshot();
            assert_eq!(snap.epoch, id);
            assert!(snap.counter("t.epoch", "").is_none(), "counter survived epoch");
            assert!(snap.hist("t.epoch.h", "").is_none(), "hist survived epoch");
        });
    }

    #[test]
    fn env_init_respects_falsy_values() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        // No variable set in the test environment: stays disabled.
        std::env::remove_var("INSITU_TRACE");
        set_enabled(false);
        assert!(!init_from_env());
    }
}
