//! Snapshots and exporters: hierarchical text summary, Chrome
//! `trace_event` JSON, and a machine-readable counter report.

use crate::hist::Histogram;
use crate::registry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded span (or instant) as exported in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, dot-prefixed by subsystem (e.g. `tensor.gemm_nn`).
    pub name: String,
    /// Free-form detail (kernel shape, batch size, …); empty if none.
    pub label: String,
    /// Small per-process thread id (dense, assigned on first record).
    pub tid: u32,
    /// OS thread name at first record (e.g. `insitu-worker-0`).
    pub thread: String,
    /// Start time, nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Nesting depth at open (0 = top level on its thread).
    pub depth: u16,
    /// Whether this is a zero-duration point event.
    pub instant: bool,
}

/// Aggregate totals for one `(name, label)` counter key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterTotal {
    /// Counter name (span names double as counter names).
    pub name: String,
    /// Counter label (span label / shape key); empty if none.
    pub label: String,
    /// Number of additions (for spans: completed calls).
    pub calls: u64,
    /// Sum of added values (for spans: total nanoseconds).
    pub total: u64,
    /// Largest single added value.
    pub max: u64,
}

/// The merged histogram for one `(name, label)` key, with its headline
/// percentiles pre-extracted for display and diffing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramTotal {
    /// Histogram name (span names double as histogram names).
    pub name: String,
    /// Histogram label (e.g. precision `"f32"`/`"i8"`); empty if none.
    pub label: String,
    /// The merged cross-thread histogram.
    pub hist: Histogram,
    /// Median sample.
    pub p50: u64,
    /// 90th-percentile sample.
    pub p90: u64,
    /// 99th-percentile sample.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramTotal {
    fn from_hist(name: String, label: String, hist: Histogram) -> Self {
        let (p50, p90, p99, max) =
            (hist.percentile(0.50), hist.percentile(0.90), hist.percentile(0.99), hist.max());
        HistogramTotal { name, label, hist, p50, p90, p99, max }
    }
}

/// A merged view of everything telemetry has recorded so far: raw span
/// events per thread plus exact cross-thread counter aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Spans and instants, ordered by `(tid, ts_ns)`.
    pub spans: Vec<SpanRecord>,
    /// Counter aggregates summed over threads, ordered by `(name, label)`.
    pub counters: Vec<CounterTotal>,
    /// Merged histograms with p50/p90/p99/max, ordered by `(name, label)`.
    pub hists: Vec<HistogramTotal>,
    /// Session-epoch id at capture (see [`crate::advance_epoch`]).
    pub epoch: u64,
    /// Raw events discarded because a thread hit its buffer cap
    /// (counters remain exact regardless).
    pub dropped_events: u64,
}

/// Builds a snapshot from the live registry (see [`crate::snapshot`]).
pub(crate) fn capture() -> TelemetrySnapshot {
    let mut spans = Vec::new();
    let mut counters: BTreeMap<(String, String), CounterTotal> = BTreeMap::new();
    let mut hists: BTreeMap<(String, String), Histogram> = BTreeMap::new();
    let mut dropped = 0u64;
    registry::for_each_buf(|buf| {
        dropped += buf.dropped;
        for ev in &buf.events {
            spans.push(SpanRecord {
                name: ev.name.to_string(),
                label: ev.label.as_deref().unwrap_or("").to_string(),
                tid: buf.tid,
                thread: buf.thread_name.clone(),
                ts_ns: ev.ts_ns,
                dur_ns: ev.dur_ns,
                depth: ev.depth,
                instant: ev.instant,
            });
        }
        for ((name, label), c) in &buf.counters {
            let e = counters
                .entry((name.to_string(), label.to_string()))
                .or_insert_with(|| CounterTotal {
                    name: name.to_string(),
                    label: label.to_string(),
                    calls: 0,
                    total: 0,
                    max: 0,
                });
            e.calls += c.calls;
            e.total += c.total;
            e.max = e.max.max(c.max);
        }
        for ((name, label), h) in &buf.hists {
            hists
                .entry((name.to_string(), label.to_string()))
                .or_default()
                .merge(h);
        }
    });
    spans.sort_by_key(|s| (s.tid, s.ts_ns, std::cmp::Reverse(s.dur_ns)));
    TelemetrySnapshot {
        spans,
        counters: counters.into_values().collect(),
        hists: hists
            .into_iter()
            .map(|((name, label), h)| HistogramTotal::from_hist(name, label, h))
            .collect(),
        epoch: registry::epoch_id(),
        dropped_events: dropped,
    }
}

impl TelemetrySnapshot {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Looks up a counter aggregate by exact `(name, label)` key.
    pub fn counter(&self, name: &str, label: &str) -> Option<&CounterTotal> {
        self.counters.iter().find(|c| c.name == name && c.label == label)
    }

    /// Whether any recorded span's name starts with `prefix`.
    pub fn has_span(&self, prefix: &str) -> bool {
        self.spans.iter().any(|s| s.name.starts_with(prefix))
    }

    /// Looks up a merged histogram by exact `(name, label)` key.
    pub fn hist(&self, name: &str, label: &str) -> Option<&HistogramTotal> {
        self.hists.iter().find(|h| h.name == name && h.label == label)
    }

    /// Human-readable hierarchical summary: spans grouped by their
    /// nesting path (aggregated across threads), then counter totals.
    pub fn summary(&self) -> String {
        // Rebuild each thread's nesting from start order + depth: a
        // span's ancestors are exactly the spans currently open at
        // depths 0..depth when it starts.
        let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut stack: Vec<&str> = Vec::new();
        let mut cur_tid = u32::MAX;
        for s in &self.spans {
            if s.instant {
                continue;
            }
            if s.tid != cur_tid {
                cur_tid = s.tid;
                stack.clear();
            }
            stack.truncate(s.depth as usize);
            stack.push(&s.name);
            let path = stack.join("/");
            let e = agg.entry(path).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        let mut out = String::from("telemetry summary\n  spans (calls, total, mean):\n");
        if agg.is_empty() {
            out.push_str("    (none)\n");
        }
        for (path, &(calls, total_ns)) in &agg {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let indent = "  ".repeat(depth);
            let mean_ns = total_ns / calls.max(1);
            let _ = writeln!(
                out,
                "    {indent}{name:<28} {calls:>7}  {:>12}  {:>10}",
                fmt_ns(total_ns),
                fmt_ns(mean_ns),
            );
        }
        out.push_str("  counters (calls, total, max):\n");
        if self.counters.is_empty() {
            out.push_str("    (none)\n");
        }
        for c in &self.counters {
            let key = if c.label.is_empty() {
                c.name.clone()
            } else {
                format!("{}[{}]", c.name, c.label)
            };
            let _ = writeln!(
                out,
                "    {key:<40} {:>9}  {:>14}  {:>12}",
                c.calls, c.total, c.max
            );
        }
        out.push_str("  histograms (count, p50, p90, p99, max):\n");
        if self.hists.is_empty() {
            out.push_str("    (none)\n");
        }
        for h in &self.hists {
            let key = if h.label.is_empty() {
                h.name.clone()
            } else {
                format!("{}[{}]", h.name, h.label)
            };
            let _ = writeln!(
                out,
                "    {key:<40} {:>9}  {:>10}  {:>10}  {:>10}  {:>10}",
                h.hist.count(),
                fmt_ns(h.p50),
                fmt_ns(h.p90),
                fmt_ns(h.p99),
                fmt_ns(h.max),
            );
        }
        if self.dropped_events > 0 {
            let _ = writeln!(out, "  dropped raw events: {}", self.dropped_events);
        }
        out
    }

    /// Chrome `trace_event` JSON: an object with a `traceEvents` array
    /// of complete (`"ph":"X"`), instant (`"ph":"i"`) and thread-name
    /// metadata (`"ph":"M"`) events. Load the output in
    /// `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
    /// microseconds since the telemetry epoch.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + 8);
        let mut named: BTreeMap<u32, &str> = BTreeMap::new();
        for s in &self.spans {
            named.entry(s.tid).or_insert(&s.thread);
        }
        for (tid, thread) in &named {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json_string(thread)
            ));
        }
        for s in &self.spans {
            let cat = s.name.split('.').next().unwrap_or("insitu");
            let common = format!(
                "\"name\":{},\"cat\":{},\"pid\":1,\"tid\":{},\"ts\":{:.3},\
                 \"args\":{{\"label\":{}}}",
                json_string(&s.name),
                json_string(cat),
                s.tid,
                s.ts_ns as f64 / 1e3,
                json_string(&s.label),
            );
            if s.instant {
                events.push(format!("{{{common},\"ph\":\"i\",\"s\":\"t\"}}"));
            } else {
                events.push(format!(
                    "{{{common},\"ph\":\"X\",\"dur\":{:.3}}}",
                    s.dur_ns as f64 / 1e3
                ));
            }
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}",
            events.join(",\n")
        )
    }

    /// Machine-readable report: dropped-event count, per-name span
    /// totals, and every counter aggregate. This is what the bench
    /// snapshot bin embeds next to its ns/iter numbers.
    pub fn to_json(&self) -> String {
        let mut span_totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            if !s.instant {
                let e = span_totals.entry(&s.name).or_insert((0, 0));
                e.0 += 1;
                e.1 += s.dur_ns;
            }
        }
        let spans: Vec<String> = span_totals
            .iter()
            .map(|(name, (calls, total_ns))| {
                format!(
                    "{{\"name\":{},\"calls\":{calls},\"total_ns\":{total_ns}}}",
                    json_string(name)
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":{},\"label\":{},\"calls\":{},\"total\":{},\"max\":{}}}",
                    json_string(&c.name),
                    json_string(&c.label),
                    c.calls,
                    c.total,
                    c.max
                )
            })
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|h| {
                format!(
                    "{{\"name\":{},\"label\":{},\"count\":{},\"sum\":{},\"min\":{},\
                     \"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                    json_string(&h.name),
                    json_string(&h.label),
                    h.hist.count(),
                    h.hist.sum(),
                    h.hist.min(),
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                )
            })
            .collect();
        format!(
            "{{\"epoch\":{},\"dropped_events\":{},\"span_totals\":[{}],\"counters\":[{}],\
             \"hists\":[{}]}}",
            self.epoch,
            self.dropped_events,
            spans.join(","),
            counters.join(","),
            hists.join(",")
        )
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            spans: vec![
                SpanRecord {
                    name: "a.outer".into(),
                    label: String::new(),
                    tid: 0,
                    thread: "main".into(),
                    ts_ns: 0,
                    dur_ns: 3_000,
                    depth: 0,
                    instant: false,
                },
                SpanRecord {
                    name: "a.inner".into(),
                    label: "x\"y".into(),
                    tid: 0,
                    thread: "main".into(),
                    ts_ns: 1_000,
                    dur_ns: 1_000,
                    depth: 1,
                    instant: false,
                },
                SpanRecord {
                    name: "a.mark".into(),
                    label: String::new(),
                    tid: 1,
                    thread: "worker".into(),
                    ts_ns: 500,
                    dur_ns: 0,
                    depth: 0,
                    instant: true,
                },
            ],
            counters: vec![CounterTotal {
                name: "a.bytes".into(),
                label: "k".into(),
                calls: 2,
                total: 64,
                max: 48,
            }],
            hists: vec![{
                let mut h = Histogram::new();
                for v in [100u64, 200, 300] {
                    h.record(v);
                }
                HistogramTotal::from_hist("a.lat".into(), String::new(), h)
            }],
            epoch: 3,
            dropped_events: 0,
        }
    }

    #[test]
    fn summary_nests_by_depth() {
        let s = sample().summary();
        assert!(s.contains("a.outer"), "{s}");
        assert!(s.contains("  a.inner"), "inner indented under outer:\n{s}");
        assert!(s.contains("a.bytes[k]"), "{s}");
    }

    #[test]
    fn chrome_trace_parses_and_escapes() {
        let json = sample().chrome_trace_json();
        let v = crate::json::parse(&json).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // 2 thread_name metadata + 2 spans + 1 instant.
        assert_eq!(events.len(), 5);
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(|p| p.as_str())).collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        // The escaped label round-trips.
        let inner = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("a.inner"))
            .unwrap();
        let label = inner.get("args").and_then(|a| a.get("label")).and_then(|l| l.as_str());
        assert_eq!(label, Some("x\"y"));
    }

    #[test]
    fn report_json_parses() {
        let v = crate::json::parse(&sample().to_json()).unwrap();
        assert_eq!(
            v.get("counters").and_then(|c| c.as_array()).map(Vec::len),
            Some(1)
        );
        assert_eq!(
            v.get("span_totals").and_then(|c| c.as_array()).map(Vec::len),
            Some(2)
        );
        assert_eq!(v.get("epoch").and_then(|e| e.as_f64()), Some(3.0));
        let hists = v.get("hists").and_then(|h| h.as_array()).unwrap();
        assert_eq!(hists.len(), 1);
        let h = &hists[0];
        assert_eq!(h.get("name").and_then(|n| n.as_str()), Some("a.lat"));
        assert_eq!(h.get("count").and_then(|c| c.as_f64()), Some(3.0));
        assert!(h.get("p50").and_then(|p| p.as_f64()).unwrap() >= 100.0);
        assert!(h.get("p99").is_some() && h.get("max").is_some());
    }

    #[test]
    fn summary_lists_histograms() {
        let s = sample().summary();
        assert!(s.contains("histograms"), "{s}");
        assert!(s.contains("a.lat"), "{s}");
    }

    #[test]
    fn hist_lookup() {
        let snap = sample();
        let h = snap.hist("a.lat", "").expect("histogram present");
        assert_eq!(h.hist.count(), 3);
        assert_eq!(h.max, 300);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max);
        assert!(snap.hist("a.lat", "zz").is_none());
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.50 us");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let snap = sample();
        assert!(snap.has_span("a.out"));
        assert!(!snap.has_span("zz"));
        assert!(!snap.is_empty());
        assert!(TelemetrySnapshot::default().is_empty());
    }
}
