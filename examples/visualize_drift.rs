//! Visualize the synthetic IoT data and the drift model.
//!
//! Writes PPM contact sheets to `./drift_gallery/`:
//! * `classes.ppm` — one row per class, instances across columns;
//! * `severity.ppm` — one class under increasing drift severity;
//! * `jigsaw.ppm` — a shuffled 3×3 jigsaw next to the original.
//!
//! Run with: `cargo run --release -p insitu --example visualize_drift`

use insitu::data::{
    assemble, contact_sheet, jigsaw::permute_tiles, patchify, save_ppm, Concept, Condition,
    PermutationSet,
};
use insitu::tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::path::Path::new("drift_gallery");
    std::fs::create_dir_all(out)?;
    let mut rng = Rng::seed_from(6);
    let classes = 6;

    // One row per class, 8 instances each.
    let mut tiles = Vec::new();
    for class in 0..classes {
        let concept = Concept::for_class(class, classes)?;
        for _ in 0..8 {
            tiles.push(concept.render(&mut rng));
        }
    }
    save_ppm(&contact_sheet(&tiles, 8)?, out.join("classes.ppm"))?;
    println!("wrote {}", out.join("classes.ppm").display());

    // One concept under rising severity.
    let concept = Concept::for_class(0, classes)?;
    let mut drifted = Vec::new();
    for step in 0..8 {
        let severity = step as f32 / 7.0;
        let cond = Condition::with_severity(severity)?;
        let img = concept.render(&mut rng);
        drifted.push(cond.apply(&img, &mut rng)?);
    }
    save_ppm(&contact_sheet(&drifted, 8)?, out.join("severity.ppm"))?;
    println!("wrote {} (severity 0.0 -> 1.0)", out.join("severity.ppm").display());

    // Jigsaw: original | shuffled | reassembled.
    let img = Concept::for_class(2, classes)?.render(&mut rng);
    let set = PermutationSet::generate(16, &mut rng)?;
    let tiles = patchify(&img)?;
    let perm = set.permutation(rng.below(set.len()));
    let shuffled = permute_tiles(&tiles, perm)?;
    let strip = contact_sheet(&[img.clone(), assemble(&shuffled)?, img], 3)?;
    save_ppm(&strip, out.join("jigsaw.ppm"))?;
    println!("wrote {} (original | shuffled | original)", out.join("jigsaw.ppm").display());
    Ok(())
}
