//! Wildlife monitor: a Serengeti-style camera-trap campaign.
//!
//! The motivating scenario of the paper: camera traps in a national
//! park, with lighting, pose, occlusion and weather drifting over
//! months. We run the paper's five-stage acquisition schedule through
//! the full In-situ AI loop (autonomous diagnosis at the node +
//! weight-shared incremental updates) and, side by side, through the
//! traditional everything-to-the-Cloud organization, printing the
//! accuracy, data-movement and update-time trajectories.
//!
//! Run with: `cargo run --release --example wildlife_monitor`

use insitu::cloud::{run_campaign, IncrementalConfig, SystemConfig, SystemKind};
use insitu::data::Campaign;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let classes = 6;
    // Scale 1:100 of the paper's schedule: 100, +100, +200, +400, +400.
    let campaign = Campaign::paper_schedule(1, classes, 7)?;
    println!(
        "campaign: {} stages, {} images total, drift severity ramping",
        campaign.stages().len(),
        campaign.total_images()
    );
    let cfg = SystemConfig {
        incremental: IncrementalConfig { epochs: 5, batch_size: 16, lr: 0.005, threads: None, holdout: None },
        bootstrap: IncrementalConfig { epochs: 10, batch_size: 16, lr: 0.005, threads: None, holdout: None },
        eval_per_stage: 150,
        ..Default::default()
    };

    println!("\nrunning the TRADITIONAL IoT system (a): upload everything …");
    let base = run_campaign(SystemKind::Traditional, &campaign, cfg.clone())?;
    println!("running IN-SITU AI (d): diagnose at the node, share conv1-3 …");
    let ours = run_campaign(SystemKind::InsituAi, &campaign, cfg)?;

    println!(
        "\n{:<8} {:>14} {:>14} {:>11} {:>11} {:>9}",
        "stage", "moved (a)", "moved (d)", "update (a)", "update (d)", "acc (d)"
    );
    for (a, d) in base.iter().zip(&ours) {
        println!(
            "{:<8} {:>11} KB {:>11} KB {:>9.1} s {:>9.1} s {:>8.1}%",
            a.stage_name,
            a.uploaded_bytes / 1000,
            d.uploaded_bytes / 1000,
            a.update_time_s(),
            d.update_time_s(),
            d.accuracy_after * 100.0
        );
    }
    let a_total: u64 = base.iter().skip(1).map(|s| s.uploaded_bytes).sum();
    let d_total: u64 = ours.iter().skip(1).map(|s| s.uploaded_bytes).sum();
    println!(
        "\npost-bootstrap data movement: {} KB -> {} KB ({:.0}% reduction)",
        a_total / 1000,
        d_total / 1000,
        (1.0 - d_total as f64 / a_total as f64) * 100.0
    );
    let final_gap = base.last().unwrap().accuracy_after - ours.last().unwrap().accuracy_after;
    println!(
        "final accuracy: traditional {:.1}%, in-situ AI {:.1}% (gap {:.1} pts)",
        base.last().unwrap().accuracy_after * 100.0,
        ours.last().unwrap().accuracy_after * 100.0,
        final_gap * 100.0
    );
    Ok(())
}
