//! FPGA architect: explore the co-running design space.
//!
//! Compares the three CONV architectures (NWS / WS / WSS) at equal PE
//! count under each weight-sharing strategy, then sweeps the WSS
//! group size for the full WSS-NWS pipeline under the Eq. 10 DSP
//! constraint.
//!
//! Run with: `cargo run --release --example fpga_architect`

use insitu::devices::{FpgaSpec, NetworkShapes};
use insitu::fpga::{ArchKind, CorunConfig, Design, WssNwsPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkShapes::alexnet();
    let convs = net.convs();
    let fcs = net.fcs();

    println!("== CONV co-run at 2628 PEs (inference + 9-patch diagnosis) ==");
    println!(
        "{:<8} {:<6} {:>12} {:>12} {:>12} {:>10}",
        "sharing", "arch", "compute", "access", "total", "diag idle"
    );
    for shared in [0usize, 3, 5] {
        let cfg = CorunConfig::paper(shared);
        for arch in ArchKind::all() {
            let r = cfg.run(arch, &convs);
            println!(
                "CONV-{:<3} {:<6} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>9.0}%",
                shared,
                arch.name(),
                r.compute_s * 1e3,
                r.data_access_s * 1e3,
                r.total_s() * 1e3,
                r.diagnosis_idle_fraction * 100.0
            );
        }
    }

    let spec = FpgaSpec::vx690t();
    println!("\n== WSS group-size sweep (Eq. 10: G x 637 PEs + NWS <= {}) ==", spec.dsp_total);
    let auto = WssNwsPipeline::configure(spec, &convs, &fcs);
    for group in 1..=6 {
        match WssNwsPipeline::configure_fixed_group(spec, &fcs, group) {
            Some(pipe) => {
                let marker = if group == auto.group_size { "  <= auto pick" } else { "" };
                println!(
                    "group {group}: conv stage {:>6.2} ms/img, throughput(b=8) {:>6.1} img/s{marker}",
                    pipe.conv_stage_s(&convs) * 1e3,
                    pipe.throughput(&convs, &fcs, 8),
                );
            }
            None => println!("group {group}: exceeds the DSP budget"),
        }
    }

    println!("\n== end-to-end designs under a 100 ms latency bound ==");
    for design in Design::all() {
        match insitu::fpga::design_throughput(design, spec, &net, 0.1, 256) {
            Some(p) => println!(
                "{:<10} batch {:>3} -> {:>6.1} img/s (latency {:.1} ms)",
                design.name(),
                p.batch,
                p.throughput,
                p.latency_s * 1e3
            ),
            None => println!("{:<10} infeasible at 100 ms", design.name()),
        }
    }
    Ok(())
}
