//! Streaming deployment: the node and the Cloud as live threads.
//!
//! Uses [`insitu::core::run_streaming_session`] to run the node on a
//! simulated sensor stream while a concurrent Cloud thread consumes
//! the valuable uploads and pushes model updates back mid-stream.
//!
//! Run with: `cargo run --release -p insitu --example streaming_node`
//!
//! Set `INSITU_TRACE=1` to trace the session: a hierarchical summary
//! is printed and the full Chrome trace is written to
//! `streaming_trace.json` (load it in chrome://tracing or
//! <https://ui.perfetto.dev>). Tracing also activates the closed
//! observability loop — the node re-plans its batch size from the
//! measured per-image p90 every few stages — and exports the
//! session's metrics hub to `streaming_metrics.prom` (Prometheus
//! text) and `streaming_metrics.json`.

use insitu::cloud::{
    build_inference, pretrain, Cloud, DeployConfig, IncrementalConfig, PretrainConfig,
};
use insitu::core::{
    plan, run_streaming_session, validate_prometheus, Availability, DiagnosisPolicy, InsituNode,
    PlanRequest, ReplanConfig,
};
use insitu::devices::NetworkShapes;
use insitu::data::{Condition, Dataset};
use insitu::tensor::Rng;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tracing = insitu::telemetry::init_from_env();
    let mut rng = Rng::seed_from(31);
    let classes = 6;

    println!("preparing deployment (pre-train + transfer) …");
    let raw = Dataset::generate(400, classes, &Condition::ideal(), &mut rng)?;
    let pre = pretrain(
        &raw,
        &PretrainConfig { permutations: 8, epochs: 8, batch_size: 16, lr: 0.015, threads: None },
        &mut rng,
    )?;
    let labeled = Dataset::generate(200, classes, &Condition::ideal(), &mut rng)?;
    let (inference, _) = build_inference(
        &pre,
        &labeled,
        &DeployConfig { epochs: 8, ..Default::default() },
        &mut rng,
    )?;
    let mut node = InsituNode::new(
        inference.clone(),
        pre.jigsaw.clone(),
        pre.set.clone(),
        DiagnosisPolicy::Oracle,
        3,
        77,
    )?;
    if tracing {
        // Close the loop: start from the analytical plan, then let the
        // node re-plan its batch from the measured per-image p90 every
        // other stage once the measurement diverges 1.5x from it.
        let shapes = NetworkShapes::alexnet();
        let request =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.5, max_batch: 64 };
        let analytical = plan(&request, &shapes, &NetworkShapes::diagnosis_of(&shapes, 9))?;
        println!("analytical plan: {}", analytical.summary());
        node.install_plan(analytical);
        node.enable_replan(ReplanConfig {
            every_stages: 2,
            divergence: 1.5,
            request,
            inference_shapes: shapes,
            quant: None,
        });
    }
    let cloud = Arc::new(Mutex::new(Cloud::new(
        inference,
        pre,
        IncrementalConfig { epochs: 3, batch_size: 16, lr: 0.002, threads: None, holdout: None },
        78,
    )));

    // Ten bursts from a drifting camera.
    println!("streaming 10 bursts of 40 drifted images through the node …");
    let stream: Vec<Dataset> = (0..10)
        .map(|i| {
            let severity = 0.5 + 0.03 * i as f32;
            Dataset::generate(
                40,
                classes,
                &Condition::with_severity(severity).expect("valid severity"),
                &mut rng,
            )
        })
        .collect::<Result<_, _>>()?;
    let eval = Dataset::generate(200, classes, &Condition::with_severity(0.65)?, &mut rng)?;

    let (mut node, stats) = run_streaming_session(node, cloud, stream, 16)?;
    println!(
        "session: {} batches, {}/{} images uploaded ({:.0}%), {} live updates installed",
        stats.batches,
        stats.images_uploaded,
        stats.images_seen,
        stats.images_uploaded as f64 / stats.images_seen as f64 * 100.0,
        stats.updates_installed
    );
    println!(
        "node ended at model v{} with {:.1}% accuracy on the drifted environment",
        node.version(),
        node.accuracy_on(&eval, 32)? * 100.0
    );
    if tracing {
        println!("{}", stats.telemetry.summary());
        std::fs::write("streaming_trace.json", stats.telemetry.chrome_trace_json())?;
        println!("Chrome trace written to streaming_trace.json (open in ui.perfetto.dev)");
        if let Some(p) = node.plan() {
            println!("final plan after {} re-plan(s): {}", stats.replans, p.summary());
        }
        let prometheus = stats.metrics.to_prometheus();
        validate_prometheus(&prometheus).map_err(|e| format!("invalid metrics export: {e}"))?;
        std::fs::write("streaming_metrics.prom", &prometheus)?;
        std::fs::write("streaming_metrics.json", stats.metrics.to_json())?;
        println!(
            "metrics hub: {} series (epoch {}) written to streaming_metrics.prom / .json",
            stats.metrics.len(),
            stats.metrics.epoch()
        );
    }
    Ok(())
}
