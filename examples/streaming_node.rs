//! Streaming deployment: producer, node and Cloud as live threads.
//!
//! Uses [`insitu::core::run_ingested_session`] to run the node against
//! a producer thread that synthesizes drifting sensor frames into a
//! bounded ingest queue (the node computes stage *N* while the
//! producer materializes *N+1*), while a concurrent Cloud thread
//! consumes the valuable uploads and pushes model updates back
//! mid-stream. The session runs the `Degrade` backpressure policy: if
//! the node falls behind, it halves its batch down to a floor and —
//! being i8-calibrated — flips inference to fixed point until the
//! queue drains.
//!
//! Run with: `cargo run --release -p insitu --example streaming_node`
//!
//! Set `INSITU_TRACE=1` to trace the session: a hierarchical summary
//! is printed and the full Chrome trace is written to
//! `streaming_trace.json` (load it in chrome://tracing or
//! <https://ui.perfetto.dev>). Tracing also activates the closed
//! observability loop — the node re-plans its batch size from the
//! measured per-image p90, or from ingest-queue pressure, every few
//! stages — and exports the session's metrics hub to
//! `streaming_metrics.prom` (Prometheus text) and
//! `streaming_metrics.json`.

use insitu::cloud::{
    build_inference, pretrain, Cloud, DeployConfig, IncrementalConfig, PretrainConfig,
};
use insitu::core::{
    plan, run_ingested_session, validate_prometheus, Availability, DegradeConfig, DiagnosisPolicy,
    IngestPolicy, IngestSessionConfig, InsituNode, PlanRequest, QuantProfile, ReplanConfig,
    SessionConfig,
};
use insitu::data::{Condition, Dataset, DriftSchedule, SyntheticDriftSource};
use insitu::devices::NetworkShapes;
use insitu::tensor::Rng;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tracing = insitu::telemetry::init_from_env();
    let mut rng = Rng::seed_from(31);
    let classes = 6;

    println!("preparing deployment (pre-train + transfer) …");
    let raw = Dataset::generate(400, classes, &Condition::ideal(), &mut rng)?;
    let pre = pretrain(
        &raw,
        &PretrainConfig { permutations: 8, epochs: 8, batch_size: 16, lr: 0.015, threads: None },
        &mut rng,
    )?;
    let labeled = Dataset::generate(200, classes, &Condition::ideal(), &mut rng)?;
    let (inference, _) = build_inference(
        &pre,
        &labeled,
        &DeployConfig { epochs: 8, ..Default::default() },
        &mut rng,
    )?;
    let mut node = InsituNode::new(
        inference.clone(),
        pre.jigsaw.clone(),
        pre.set.clone(),
        DiagnosisPolicy::Oracle,
        3,
        77,
    )?;
    // Calibrate the fixed-point path up front so the degrade
    // controller (and a depth-triggered re-plan) can flip to i8 live.
    let calib = Dataset::generate(32, classes, &Condition::ideal(), &mut rng)?;
    node.enable_quantized(&calib)?;
    node.set_precision(insitu::core::InferencePrecision::F32)?;
    if tracing {
        // Close the loop: start from the analytical plan, then let the
        // node re-plan from the measured per-image p90 (1.5x
        // divergence) or from sustained ingest-queue pressure, with a
        // live f32 -> i8 flip allowed.
        let shapes = NetworkShapes::alexnet();
        let request =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.5, max_batch: 64 };
        let analytical = plan(&request, &shapes, &NetworkShapes::diagnosis_of(&shapes, 9))?;
        println!("analytical plan: {}", analytical.summary());
        node.install_plan(analytical);
        node.enable_replan(ReplanConfig {
            every_stages: 2,
            divergence: 1.5,
            queue_depth_trigger: Some(3),
            allow_precision_flip: true,
            request,
            inference_shapes: shapes,
            quant: Some(QuantProfile { speedup: 1.3, accuracy_delta: -0.01 }),
        });
    }
    let cloud = Arc::new(Mutex::new(Cloud::new(
        inference,
        pre,
        IncrementalConfig { epochs: 3, batch_size: 16, lr: 0.002, threads: None, holdout: None },
        78,
    )));

    // Ten bursts of 40 images from a drifting camera, materialized by
    // the producer thread while the node computes the previous stage.
    println!("streaming 10 produced bursts of 40 drifting images through the node …");
    let source =
        SyntheticDriftSource::new(10, 40, classes, DriftSchedule { start: 0.5, step: 0.03 }, 41)?;
    let eval = Dataset::generate(200, classes, &Condition::with_severity(0.65)?, &mut rng)?;

    let config = IngestSessionConfig {
        session: SessionConfig::with_batch(16),
        queue_capacity: 4,
        policy: IngestPolicy::Degrade(DegradeConfig {
            high_watermark: 2,
            low_watermark: 0,
            min_batch: 4,
            allow_precision_flip: true,
        }),
    };
    let (mut node, stats, ingest) = run_ingested_session(node, cloud, Box::new(source), &config)?;
    println!(
        "session: {} batches, {}/{} images uploaded ({:.0}%), {} live updates installed",
        stats.batches,
        stats.images_uploaded,
        stats.images_seen,
        stats.images_uploaded as f64 / stats.images_seen as f64 * 100.0,
        stats.updates_installed
    );
    println!(
        "ingest: {} frames produced ({} dropped), queue depth peaked at {}, \
         {} fresh / {} recycled arena buffers, {:.1} ms producing in total",
        ingest.frames,
        ingest.drops,
        ingest.max_queue_depth,
        ingest.fresh_buffers,
        ingest.reused_buffers,
        ingest.produce_ns_total as f64 / 1e6
    );
    println!(
        "backpressure: {} degrade step(s), {} restore(s), {} precision flip(s); \
         node ended at {}",
        ingest.degrades,
        ingest.restores,
        ingest.precision_flips,
        insitu::core::precision_label(node.precision())
    );
    println!(
        "node ended at model v{} with {:.1}% accuracy on the drifted environment",
        node.version(),
        node.accuracy_on(&eval, 32)? * 100.0
    );
    if tracing {
        println!("{}", stats.telemetry.summary());
        // The ingest histograms the overlapped pipeline feeds: queue
        // depth (frames waiting when the node came back for more) and
        // producer latency per frame.
        for (name, unit, scale) in [
            ("node.ingest.queue_depth", "frames", 1.0),
            ("node.ingest.produce", "ms", 1e6),
            ("node.ingest.wait", "ms", 1e6),
        ] {
            if let Some(h) = stats.telemetry.hist(name, "") {
                println!(
                    "{name}: count {} p50 {:.2} p90 {:.2} p99 {:.2} ({unit})",
                    h.hist.count(),
                    h.p50 as f64 / scale,
                    h.p90 as f64 / scale,
                    h.p99 as f64 / scale,
                );
            }
        }
        std::fs::write("streaming_trace.json", stats.telemetry.chrome_trace_json())?;
        println!("Chrome trace written to streaming_trace.json (open in ui.perfetto.dev)");
        if let Some(p) = node.plan() {
            println!(
                "final plan after {} re-plan(s) and {} lifetime precision flip(s): {}",
                stats.replans,
                node.precision_flips(),
                p.summary()
            );
        }
        let prometheus = stats.metrics.to_prometheus();
        validate_prometheus(&prometheus).map_err(|e| format!("invalid metrics export: {e}"))?;
        std::fs::write("streaming_metrics.prom", &prometheus)?;
        std::fs::write("streaming_metrics.json", stats.metrics.to_json())?;
        println!(
            "metrics hub: {} series (epoch {}) written to streaming_metrics.prom / .json",
            stats.metrics.len(),
            stats.metrics.epoch()
        );
    }
    Ok(())
}
