//! Quickstart: build a full In-situ AI deployment and run one
//! acquisition round.
//!
//! The flow mirrors the paper's Fig. 4:
//! 1. the Cloud pre-trains the unsupervised jigsaw network on raw data;
//! 2. transfer learning builds the inference network (conv1–3 shared
//!    and locked);
//! 3. both models deploy to an edge node;
//! 4. the node infers + diagnoses a drifted stream, uploading only the
//!    valuable samples;
//! 5. the Cloud fine-tunes on the upload and ships a model update.
//!
//! Run with: `cargo run --release --example quickstart`

use insitu::cloud::{
    build_inference, pretrain, Cloud, DeployConfig, IncrementalConfig, PretrainConfig,
};
use insitu::core::{CloudEndpoint, DiagnosisPolicy, InsituNode};
use insitu::data::{Condition, Dataset};
use insitu::tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(2018);
    let classes = 6;

    println!("[1/5] unsupervised pre-training on raw IoT data …");
    let raw = Dataset::generate(600, classes, &Condition::ideal(), &mut rng)?;
    let pre = pretrain(
        &raw,
        &PretrainConfig { permutations: 8, epochs: 12, batch_size: 16, lr: 0.015, threads: None },
        &mut rng,
    )?;
    println!("      jigsaw task accuracy: {:.1}%", pre.task_accuracy * 100.0);

    println!("[2/5] transfer learning the inference network (share conv1-3) …");
    let labeled = Dataset::generate(240, classes, &Condition::ideal(), &mut rng)?;
    let (inference, report) = build_inference(
        &pre,
        &labeled,
        &DeployConfig { epochs: 10, ..Default::default() },
        &mut rng,
    )?;
    println!("      trained {} steps, final loss {:.3}", report.steps, report.final_loss());

    println!("[3/5] deploying to the edge node …");
    let mut node = InsituNode::new(
        inference.clone(), // the node's copy; the Cloud keeps the master
        pre.jigsaw.clone(),
        pre.set.clone(),
        DiagnosisPolicy::JigsawProbe { probes: 3 },
        3,
        7,
    )?;
    let mut cloud = Cloud::new(
        inference,
        pre,
        IncrementalConfig { epochs: 4, batch_size: 16, lr: 0.005, threads: None, holdout: None },
        99,
    );

    println!("[4/5] processing a drifted in-situ stream …");
    let stream = Dataset::generate(200, classes, &Condition::in_situ(), &mut rng)?;
    let eval = Dataset::generate(150, classes, &Condition::in_situ(), &mut rng)?;
    let before = node.accuracy_on(&eval, 32)?;
    let outcome = node.process_stage(&stream, 32)?;
    println!(
        "      {} of {} images flagged valuable ({:.0}% upload, {} bytes)",
        outcome.valuable.len(),
        stream.len(),
        outcome.upload_fraction() * 100.0,
        outcome.uploaded_bytes
    );

    println!("[5/5] incremental Cloud update on the valuable data …");
    let payload = node.upload_payload(&stream, &outcome)?;
    let update = cloud.incremental_update(&payload)?;
    node.install_update(&update)?;
    let after = node.accuracy_on(&eval, 32)?;
    println!(
        "      in-situ accuracy {:.1}% -> {:.1}% (model v{})",
        before * 100.0,
        after * 100.0,
        node.version()
    );
    Ok(())
}
