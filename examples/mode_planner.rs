//! Mode planner: pick the deployment configuration for an IoT node
//! from the paper's analytical models.
//!
//! Given an availability requirement and an end-user latency bound,
//! the planner chooses Single-running (mobile GPU, time + resource
//! models) or Co-running (FPGA, WSS-NWS pipeline model) and the batch
//! sizes. This example sweeps several deployments and prints the
//! decisions.
//!
//! Run with: `cargo run --release --example mode_planner`

use insitu::core::{plan, Availability, PlanRequest};
use insitu::devices::NetworkShapes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inference = NetworkShapes::alexnet();
    let diagnosis = NetworkShapes::diagnosis_of(&inference, 9);
    println!(
        "planning for `{}` ({} conv + {} fc layers, {:.2} Gops/image)\n",
        inference.name,
        inference.convs().len(),
        inference.fcs().len(),
        inference.total_ops() as f64 / 1e9
    );
    println!(
        "{:<24} {:>8} {:>14} {:>10} {:>10} {:>12} {:>10}",
        "scenario", "T_user", "mode", "platform", "batch", "latency", "img/s"
    );
    let scenarios = [
        ("night-idle camera", Availability::Scheduled, 0.033),
        ("smart doorbell", Availability::Scheduled, 0.2),
        ("wildlife sanctuary", Availability::Scheduled, 1.0),
        ("24/7 surveillance", Availability::AlwaysOn, 0.05),
        ("24/7 traffic monitor", Availability::AlwaysOn, 0.2),
        ("24/7 anomaly detector", Availability::AlwaysOn, 0.8),
    ];
    for (name, availability, t_user) in scenarios {
        let request = PlanRequest { availability, t_user, max_batch: 256 };
        match plan(&request, &inference, &diagnosis) {
            Ok(p) => println!(
                "{:<24} {:>6.0}ms {:>14} {:>10} {:>10} {:>9.1}ms {:>10.1}",
                name,
                t_user * 1e3,
                format!("{:?}", p.mode),
                format!("{:?}", p.platform),
                p.inference_batch,
                p.predicted_latency_s * 1e3,
                p.predicted_throughput
            ),
            Err(e) => println!("{name:<24} {:>6.0}ms  INFEASIBLE: {e}", t_user * 1e3),
        }
    }
    println!("\nDiagnosis batch sizes (Single-running) come from the Eq. 9 resource");
    println!("model; Co-running batches from the Eq. 13/14 pipeline model.");
    Ok(())
}
