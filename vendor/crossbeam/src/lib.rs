//! Offline stand-in for `crossbeam` (see `vendor/README.md`): only the
//! `channel` module surface this workspace uses, backed by
//! `std::sync::mpsc`.

/// MPSC channels with the `crossbeam::channel` API shape.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a channel (bounded or unbounded).
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Backed by a rendezvous/bounded std channel.
        Bounded(mpsc::SyncSender<T>),
        /// Backed by an unbounded std channel.
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        /// Errors only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Bounded(s) => s.send(value),
                Sender::Unbounded(s) => s.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over messages until every sender is gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn unbounded_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
