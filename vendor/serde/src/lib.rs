//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on value types but
//! never serializes through serde (weight snapshots use the codec in
//! `insitu-nn::serialize`), so marker traits plus no-op derives cover
//! the whole used surface.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
