//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, range/tuple/`prop_map` strategies,
//! [`collection::vec`], and the `prop_assert*` / [`prop_assume!`]
//! macros. Cases are generated from a deterministic per-case RNG
//! (SplitMix64 over the case index), so failures are reproducible —
//! there is no shrinking, the failing case index is reported instead.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from this strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let frac = rng.next_f64() as $t;
                    self.start + frac * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// lengths are drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, RNG, and error plumbing.

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not succeed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case hit a `prop_assume!` that did not hold; it is
        /// retried with fresh inputs rather than counted as a failure.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    /// Deterministic case RNG: SplitMix64 seeded from the case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` (stable across runs).
        pub fn deterministic(case: u64) -> Self {
            TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678_9ABC_DEF0) }
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; see the crate docs for the supported surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __case: u64 = 0;
            let mut __runs: u32 = 0;
            let mut __rejects: u32 = 0;
            while __runs < __config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                __case += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => __runs += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejects += 1;
                        if __rejects > 1000 + 20 * __config.cases {
                            panic!(
                                "proptest `{}`: too many prop_assume! rejections ({})",
                                stringify!($name),
                                __rejects
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest `{}` failed at case #{}: {}",
                            stringify!($name),
                            __case - 1,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} ({}:{})", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r,
                            file!(),
                            line!()
                        )),
                    );
                }
            }
        }
    };
}

/// Fails the current case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            file!(),
                            line!()
                        )),
                    );
                }
            }
        }
    };
}

/// Discards the current case (retried with fresh inputs) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3usize..17, b in -2i64..9, x in 0.5f32..2.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2..9).contains(&b));
            prop_assert!((0.5..2.5).contains(&x));
        }

        #[test]
        fn tuples_and_map(v in (1usize..5, 1usize..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&v));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = TestRng::deterministic(7);
        let mut b = TestRng::deterministic(7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_f64(), b.next_f64());
    }
}
