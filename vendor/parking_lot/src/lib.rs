//! Offline stand-in for `parking_lot` (see `vendor/README.md`):
//! `Mutex` and `RwLock` with parking_lot's non-poisoning API, backed by
//! `std::sync`. A poisoned std lock (a panic while held) is recovered
//! rather than propagated, matching parking_lot semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (no poisoning), like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<StdMutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
