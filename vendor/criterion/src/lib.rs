//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! A wall-clock micro-benchmark harness with criterion's API shape:
//! warm-up, fixed sample count, median/min/max ns-per-iter reporting,
//! and element throughput. It has no plotting, no statistical
//! regression analysis, and no saved baselines — it prints one summary
//! line per benchmark.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (all variants behave the
/// same here: setup runs per batch and is excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per sample.
    SmallInput,
    /// Large inputs: few per sample.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Work-per-iteration declaration used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many elements (reported as Melem/s).
    Elements(u64),
    /// Iteration processes this many bytes (reported as MiB/s).
    Bytes(u64),
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// One benchmark's collected timings, in nanoseconds per iteration.
#[derive(Debug, Clone)]
struct Samples {
    ns_per_iter: Vec<f64>,
}

impl Samples {
    fn median(&self) -> f64 {
        let mut v = self.ns_per_iter.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    }

    fn min(&self) -> f64 {
        self.ns_per_iter.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn max(&self) -> f64 {
        self.ns_per_iter.iter().copied().fold(0.0, f64::max)
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(id: &str, samples: &Samples, throughput: Option<Throughput>) {
    let median = samples.median();
    let mut line = format!(
        "{:<44} time: [{} {} {}]",
        id,
        fmt_time(samples.min()),
        fmt_time(median),
        fmt_time(samples.max()),
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            let elem_per_s = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {:.2} Melem/s", elem_per_s / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            let bytes_per_s = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {:.2} MiB/s", bytes_per_s / (1024.0 * 1024.0)));
        }
        None => {}
    }
    println!("{line}");
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets how long each benchmark warms up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the time budget spread across a benchmark's samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.as_ref(), f, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    fn run_one<F>(&mut self, id: &str, mut f: F, throughput: Option<Throughput>)
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: how long does one iteration take?
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));

        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
        }

        // Sampling: split the measurement budget across samples.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;
        let mut samples = Samples { ns_per_iter: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples.ns_per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        report(id, &samples, throughput);
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work one iteration performs for the following
    /// benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        let throughput = self.throughput;
        self.criterion.run_one(&full, f, throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing context handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-iteration inputs built by `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark harness entry point (criterion-compatible
/// syntax, with or without a `config = ..` line).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_prefix_and_throughput() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(128));
        group.bench_function("add", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(12.0), "12.0 ns");
        assert_eq!(fmt_time(1_500.0), "1.50 µs");
        assert_eq!(fmt_time(2_500_000.0), "2.50 ms");
    }
}
