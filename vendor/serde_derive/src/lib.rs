//! No-op derive macros standing in for `serde_derive` in this offline
//! build (see `vendor/README.md`). The workspace only uses the derives
//! as markers — nothing is ever serialized through serde — so deriving
//! nothing is behaviour-preserving.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
