//! # insitu
//!
//! Umbrella crate for the **In-situ AI** reproduction (Song et al.,
//! HPCA 2018): autonomous and incremental deep learning for IoT
//! systems, rebuilt as a pure-Rust workspace.
//!
//! The member crates, re-exported here as modules:
//!
//! * [`tensor`] — dense `f32` tensors, GEMM, im2col convolution, RNG.
//! * [`nn`] — the from-scratch NN framework: layers, SGD, freezing,
//!   the weight-shared jigsaw siamese net, transfer learning.
//! * [`data`] — synthetic IoT imagery with environment drift, jigsaw
//!   permutations, staged acquisition campaigns.
//! * [`devices`] — analytical GPU/FPGA/Cloud time & energy models
//!   (the paper's Eqs. 1–14).
//! * [`fpga`] — the NWS/WS/WSS architecture simulator and the
//!   WSS-NWS pipeline.
//! * [`core`] — the In-situ AI framework: node, diagnosis task,
//!   working modes, configuration planner, update protocol.
//! * [`cloud`] — unsupervised pre-training, transfer, incremental
//!   updates, and the four IoT system organizations.
//! * [`telemetry`] — structured tracing: spans, per-kernel counters,
//!   hierarchical summaries and Chrome-trace export.
//!
//! ## Quick start
//!
//! ```
//! use insitu::core::{plan, Availability, PlanRequest};
//! use insitu::devices::NetworkShapes;
//!
//! # fn main() -> Result<(), insitu::core::CoreError> {
//! let inference = NetworkShapes::alexnet();
//! let diagnosis = NetworkShapes::diagnosis_of(&inference, 9);
//! let request = PlanRequest {
//!     availability: Availability::Scheduled,
//!     t_user: 0.1,
//!     max_batch: 128,
//! };
//! let plan = plan(&request, &inference, &diagnosis)?;
//! println!("deploy: {:?} at batch {}", plan.platform, plan.inference_batch);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and the
//! `insitu-experiments` crate for the full evaluation reproduction.

#![warn(missing_docs)]

pub use insitu_cloud as cloud;
pub use insitu_core as core;
pub use insitu_data as data;
pub use insitu_devices as devices;
pub use insitu_fpga as fpga;
pub use insitu_nn as nn;
pub use insitu_telemetry as telemetry;
pub use insitu_tensor as tensor;
